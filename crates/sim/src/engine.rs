//! The sequential discrete-event execution engine and the shared
//! simulation driver.
//!
//! Every public `simulate*` entry point is a thin wrapper over one
//! generic driver ([`run_simulation`]): validate the schedule, sample the
//! iteration's fault plan if the caller didn't supply one, then select an
//! engine — this sequential oracle, or the conservatively partitioned
//! parallel engine in [`crate::par`] for large, parallel-safe workloads
//! (see [`selected_engine`]).

use crate::arena::{CalendarQueue, EventPool};
use crate::config::SimConfig;
use crate::error::SimError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use tictac_faults::{FaultClock, FaultPlan};
use tictac_graph::{Channel, ChannelId, DeviceId, Graph, OpId, OpKind};
use tictac_obs::{BucketHistogram, Counter, Registry};
use tictac_sched::Schedule;
use tictac_timing::{CostOracle, SimTime, TimeOracle};
use tictac_trace::{ExecutionTrace, FaultEventKind, TraceBuilder};

/// Simulates one iteration of `graph` under `schedule` and returns its
/// execution trace.
///
/// `iteration` seeds this iteration's random stream (combined with
/// `config.seed`), so repeated calls with the same arguments are exactly
/// reproducible while distinct iterations observe independent noise,
/// ready-queue draws and injected faults.
///
/// This is the panicking convenience wrapper around [`try_simulate`];
/// prefer the latter when faults are enabled and failures (exhausted retry
/// budgets without a degraded barrier) are expected outcomes.
///
/// # Panics
///
/// Panics if [`try_simulate`] returns an error.
pub fn simulate(
    graph: &Graph,
    schedule: &Schedule,
    config: &SimConfig,
    iteration: u64,
) -> ExecutionTrace {
    try_simulate(graph, schedule, config, iteration).unwrap_or_else(|e| panic!("{e}"))
}

/// Simulates one iteration, sampling the iteration's [`FaultPlan`] from
/// `config.faults`.
///
/// # Errors
///
/// Returns [`SimError::ScheduleMismatch`] if `schedule` does not cover
/// `graph`, [`SimError::RetriesExhausted`] if a transfer runs out of
/// retransmits with no degraded barrier configured, and
/// [`SimError::Deadlock`] if the event queue drains with work outstanding
/// (impossible for builder-validated DAGs without fault injection).
pub fn try_simulate(
    graph: &Graph,
    schedule: &Schedule,
    config: &SimConfig,
    iteration: u64,
) -> Result<ExecutionTrace, SimError> {
    run_simulation(
        graph,
        schedule,
        config,
        iteration,
        None,
        &Registry::disabled(),
    )
}

/// Simulates one iteration under an explicit, pre-sampled [`FaultPlan`]
/// (replayable: the same plan injects the same faults every time).
///
/// # Errors
///
/// As [`try_simulate`].
pub fn simulate_with_plan(
    graph: &Graph,
    schedule: &Schedule,
    config: &SimConfig,
    iteration: u64,
    plan: &FaultPlan,
) -> Result<ExecutionTrace, SimError> {
    run_simulation(
        graph,
        schedule,
        config,
        iteration,
        Some(plan),
        &Registry::disabled(),
    )
}

/// Like [`try_simulate`], recording engine metrics — per-channel bytes,
/// busy/idle time and queue depths, per-device busy time and ready-set
/// depths, event and retransmit counts — into `registry`.
///
/// The instrumentation only *reads* engine state: a run observed through
/// an enabled registry produces exactly the trace the unobserved run
/// does (the golden-trace fingerprints pin the disabled path, and
/// `tests/observability.rs` pins enabled-vs-disabled equality).
///
/// # Errors
///
/// As [`try_simulate`].
pub fn try_simulate_observed(
    graph: &Graph,
    schedule: &Schedule,
    config: &SimConfig,
    iteration: u64,
    registry: &Registry,
) -> Result<ExecutionTrace, SimError> {
    run_simulation(graph, schedule, config, iteration, None, registry)
}

/// Like [`simulate_with_plan`], recording engine metrics into `registry`
/// (see [`try_simulate_observed`]).
///
/// # Errors
///
/// As [`try_simulate`].
pub fn simulate_with_plan_observed(
    graph: &Graph,
    schedule: &Schedule,
    config: &SimConfig,
    iteration: u64,
    plan: &FaultPlan,
    registry: &Registry,
) -> Result<ExecutionTrace, SimError> {
    run_simulation(graph, schedule, config, iteration, Some(plan), registry)
}

/// The engine a `simulate*` call resolves to for a given workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The sequential oracle engine (this module).
    Sequential,
    /// The conservatively partitioned parallel engine ([`crate::par`]).
    Parallel,
}

/// Which engine the `simulate*` entry points select for `(graph, config)`.
///
/// The parallel engine is chosen only when the workload is *parallel-safe*
/// — at least [`SimConfig::par_threshold`] workers, deterministic timing
/// (no noise, no reorder error, disorder window 1), a quiet fault spec,
/// and a pure worker↔PS topology — so that it is observationally
/// equivalent to the sequential oracle (`tests/par_equivalence.rs`).
/// Everything else runs sequentially. Two run-time inputs can still force
/// the sequential engine even when this returns
/// [`EngineChoice::Parallel`]: an *enabled* metrics [`Registry`] (engine
/// metrics are sequential-only) and an explicitly supplied non-quiet
/// [`FaultPlan`].
pub fn selected_engine(graph: &Graph, config: &SimConfig) -> EngineChoice {
    if crate::par::eligible(graph, config) {
        EngineChoice::Parallel
    } else {
        EngineChoice::Sequential
    }
}

/// The shared driver behind every public `simulate*` entry point:
/// validates the schedule, samples the iteration's fault plan when the
/// caller didn't pin one, then routes to the selected engine.
fn run_simulation(
    graph: &Graph,
    schedule: &Schedule,
    config: &SimConfig,
    iteration: u64,
    plan: Option<&FaultPlan>,
    registry: &Registry,
) -> Result<ExecutionTrace, SimError> {
    if schedule.len() != graph.len() {
        return Err(SimError::ScheduleMismatch {
            schedule_len: schedule.len(),
            graph_len: graph.len(),
        });
    }
    let sampled;
    let plan = match plan {
        Some(plan) => plan,
        None => {
            sampled = FaultPlan::sample(&config.faults, graph, config.seed, iteration);
            &sampled
        }
    };
    if !registry.is_enabled() && plan.is_quiet() && crate::par::eligible(graph, config) {
        return crate::par::simulate_par(graph, schedule, config);
    }
    let mut engine = Engine::new(graph, schedule, config, iteration, plan);
    engine.metrics = EngineMetrics::install(registry, graph);
    engine.run()
}

/// Queue/ready-set depth histogram bounds (powers of two).
const DEPTH_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The engine's registry handles, allocated once per run so the hot path
/// only touches atomics. Present only for enabled registries; every hook
/// *reads* engine state and never draws from the RNG, so enabling
/// metrics cannot perturb the simulated outcome.
struct EngineMetrics {
    registry: Registry,
    /// `sim.events`: events popped from the queue.
    events: Counter,
    /// `sim.retransmits`: transfer attempts re-queued after a timeout.
    retransmits: Counter,
    /// `sim.chan{c}.bytes`: payload bytes of completed transfers.
    chan_bytes: Vec<Counter>,
    /// `sim.chan{c}.busy_ns`: wire time of completed transfers.
    chan_busy_ns: Vec<Counter>,
    /// `sim.chan{c}.transfers`: completed transfers.
    chan_transfers: Vec<Counter>,
    /// `sim.chan{c}.queue_depth`: pending transfers, sampled whenever an
    /// idle channel considers starting one.
    chan_queue_depth: Vec<BucketHistogram>,
    /// `sim.dev{d}.busy_ns`: compute time of completed ops.
    dev_busy_ns: Vec<Counter>,
    /// `sim.dev{d}.ops`: completed compute ops.
    dev_ops: Vec<Counter>,
    /// `sim.dev{d}.ready_depth`: pick candidates, sampled whenever an
    /// idle device starts an op.
    dev_ready_depth: Vec<BucketHistogram>,
}

impl EngineMetrics {
    fn install(registry: &Registry, graph: &Graph) -> Option<Box<Self>> {
        if !registry.is_enabled() {
            return None;
        }
        let chans = graph.channels().len();
        let devs = graph.devices().len();
        Some(Box::new(Self {
            registry: registry.clone(),
            events: registry.counter("sim.events"),
            retransmits: registry.counter("sim.retransmits"),
            chan_bytes: (0..chans)
                .map(|c| registry.counter(&format!("sim.chan{c}.bytes")))
                .collect(),
            chan_busy_ns: (0..chans)
                .map(|c| registry.counter(&format!("sim.chan{c}.busy_ns")))
                .collect(),
            chan_transfers: (0..chans)
                .map(|c| registry.counter(&format!("sim.chan{c}.transfers")))
                .collect(),
            chan_queue_depth: (0..chans)
                .map(|c| registry.histogram(&format!("sim.chan{c}.queue_depth"), &DEPTH_BUCKETS))
                .collect(),
            dev_busy_ns: (0..devs)
                .map(|d| registry.counter(&format!("sim.dev{d}.busy_ns")))
                .collect(),
            dev_ops: (0..devs)
                .map(|d| registry.counter(&format!("sim.dev{d}.ops")))
                .collect(),
            dev_ready_depth: (0..devs)
                .map(|d| registry.histogram(&format!("sim.dev{d}.ready_depth"), &DEPTH_BUCKETS))
                .collect(),
        }))
    }

    /// End-of-run derived gauges: per-channel idle time against the
    /// iteration makespan.
    fn finish(&self, makespan: tictac_timing::SimDuration) {
        for (c, busy) in self.chan_busy_ns.iter().enumerate() {
            let idle = makespan.as_nanos().saturating_sub(busy.get());
            self.registry
                .gauge(&format!("sim.chan{c}.idle_ns"))
                .set(idle as f64);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Op finished on its compute unit (stale if the epoch mismatches).
    ComputeDone(OpId, u32),
    /// Transfer completed on the wire (stale if the epoch mismatches).
    TransferDone(OpId, u32),
    /// Loss-detection timeout of a dropped transfer attempt fired.
    TransferTimeout(OpId, u32),
    /// Injected availability change from the iteration's fault plan.
    Fault(FaultAction),
    /// Degraded-mode sync barrier release.
    Barrier,
}

/// Availability transitions scheduled from a [`FaultPlan`]. Times are in
/// nanoseconds (the `Ev` clock domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    BlackoutStart { ch: usize, until: u64 },
    BlackoutEnd { ch: usize },
    CrashStart { dev: usize, until: u64 },
    CrashEnd { dev: usize },
    StallStart { dev: usize, until: u64 },
    StallEnd { dev: usize },
}

/// Per-device ready set, bucketed by schedule priority.
///
/// The seed engine scanned the whole ready `Vec` per pick to find the
/// minimum priority and collect candidates. Here the candidate set — all
/// unprioritized ready ops plus the ops holding the minimum priority — is
/// directly addressable: unprioritized ops in one FIFO, prioritized ops
/// bucketed by priority. A monotone sequence number stamps every push so
/// the two pools can be threaded back into the exact readiness order the
/// seed engine's candidate indices exposed (the RNG pick index must mean
/// the same op).
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    seq: u64,
    /// Unprioritized ready ops in push order.
    unprio: VecDeque<(u64, OpId)>,
    /// Prioritized ready ops, bucketed by priority, each in push order.
    buckets: BTreeMap<u64, VecDeque<(u64, OpId)>>,
    len: usize,
}

impl ReadyQueue {
    pub(crate) fn push(&mut self, op: OpId, priority: Option<u64>) {
        self.seq += 1;
        match priority {
            None => self.unprio.push_back((self.seq, op)),
            Some(p) => self.buckets.entry(p).or_default().push_back((self.seq, op)),
        }
        self.len += 1;
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pick candidates: unprioritized plus the minimum bucket.
    fn candidates(&self) -> usize {
        self.unprio.len() + self.buckets.first_key_value().map_or(0, |(_, b)| b.len())
    }

    /// Removes and returns the `idx`-th candidate in readiness order.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.candidates()`.
    pub(crate) fn take_candidate(&mut self, idx: usize) -> OpId {
        let min_key = self.buckets.first_key_value().map(|(&k, _)| k);
        let bucket_at = |b: usize| {
            min_key.and_then(|k| self.buckets.get(&k).and_then(|q| q.get(b).map(|e| e.0)))
        };
        // Merge the two pools by sequence number up to position `idx`.
        let (mut a, mut b) = (0usize, 0usize);
        for _ in 0..idx {
            match (self.unprio.get(a).map(|e| e.0), bucket_at(b)) {
                (Some(x), Some(y)) if x < y => a += 1,
                (Some(_), Some(_)) | (None, Some(_)) => b += 1,
                (Some(_), None) => a += 1,
                (None, None) => panic!("candidate index out of range"),
            }
        }
        let from_unprio = match (self.unprio.get(a).map(|e| e.0), bucket_at(b)) {
            (Some(x), Some(y)) => x < y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => panic!("candidate index out of range"),
        };
        self.len -= 1;
        if from_unprio {
            self.unprio.remove(a).expect("candidate present").1
        } else {
            let k = min_key.expect("bucket candidate implies a bucket");
            let bucket = self.buckets.get_mut(&k).expect("minimum bucket");
            let op = bucket.remove(b).expect("candidate present").1;
            if bucket.is_empty() {
                self.buckets.remove(&k);
            }
            op
        }
    }
}

/// One queued transfer on a channel.
#[derive(Debug, Clone, Copy)]
struct ChanEntry {
    seq: u64,
    op: OpId,
    rank: Option<u64>,
    alive: bool,
}

/// Per-channel pending-transfer queue with an `O(log n)` ranked pick.
///
/// The seed engine kept a flat `Vec` and scanned it per pick for the
/// minimum enforcement rank, then `Vec::remove`d by index. Here entries
/// live in `order` (hand-off order — the disorder-window pick indexes
/// live entries in this order) with a side map from enforcement rank to
/// entry sequence number for the lowest-rank fast path. Removals tombstone
/// the entry; dead prefixes pop eagerly and the deque is compacted when
/// tombstones outnumber live entries, keeping walks amortized cheap.
#[derive(Debug, Default)]
pub(crate) struct ChanQueue {
    seq: u64,
    /// Queued transfers in hand-off order; `seq` is strictly increasing
    /// along the deque (compaction preserves order).
    order: VecDeque<ChanEntry>,
    /// Enforcement rank -> `seq` of the live entry carrying it.
    ranked: BTreeMap<u64, u64>,
    live: usize,
}

impl ChanQueue {
    pub(crate) fn push(&mut self, op: OpId, rank: Option<u64>) {
        self.seq += 1;
        if let Some(r) = rank {
            let prev = self.ranked.insert(r, self.seq);
            debug_assert!(prev.is_none(), "duplicate enforcement rank {r} queued");
        }
        self.order.push_back(ChanEntry {
            seq: self.seq,
            op,
            rank,
            alive: true,
        });
        self.live += 1;
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub(crate) fn live(&self) -> usize {
        self.live
    }

    pub(crate) fn has_ranked(&self) -> bool {
        !self.ranked.is_empty()
    }

    /// Removes and returns the queued transfer with the lowest enforcement
    /// rank.
    ///
    /// # Panics
    ///
    /// Panics if no ranked transfer is queued.
    pub(crate) fn pop_min_rank(&mut self) -> OpId {
        let (&rank, &seq) = self.ranked.iter().next().expect("a ranked entry");
        self.ranked.remove(&rank);
        let idx = self
            .order
            .binary_search_by(|e| e.seq.cmp(&seq))
            .expect("ranked entry present in order");
        let op = self.order[idx].op;
        self.order[idx].alive = false;
        self.live -= 1;
        self.trim();
        op
    }

    /// Removes and returns the `idx`-th live transfer in hand-off order.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.live()`.
    pub(crate) fn pop_live_index(&mut self, idx: usize) -> OpId {
        let mut seen = 0usize;
        let pos = self
            .order
            .iter()
            .position(|e| {
                if e.alive {
                    seen += 1;
                }
                e.alive && seen == idx + 1
            })
            .expect("live index in range");
        let entry = &mut self.order[pos];
        entry.alive = false;
        let op = entry.op;
        if let Some(r) = entry.rank {
            self.ranked.remove(&r);
        }
        self.live -= 1;
        self.trim();
        op
    }

    /// Pops dead prefixes and compacts when tombstones dominate.
    fn trim(&mut self) {
        while self.order.front().is_some_and(|e| !e.alive) {
            self.order.pop_front();
        }
        if self.order.len() > 2 * self.live.max(1) {
            self.order.retain(|e| e.alive);
        }
    }
}

/// Enforcement ranks: priorities normalized to `[0, n)` per channel,
/// attached to the PS-side send op of each prioritized transfer (§5.1:
/// enforcement happens at the sender before gRPC hand-off). Hand-built
/// graphs may model recvs as pure roots (no explicit send op); those
/// transfers carry the rank on the recv itself and are ordered by the
/// channel's rank-aware pop alone. Shared by both engines.
pub(crate) fn enforcement_ranks(graph: &Graph, schedule: &Schedule) -> Vec<Option<u64>> {
    let mut rank = vec![None; graph.len()];
    for (ch, recvs) in schedule
        .ordered_recvs_per_channel(graph)
        .into_iter()
        .enumerate()
    {
        debug_assert!(ch < graph.channels().len());
        for (r, recv) in recvs.into_iter().enumerate() {
            let send = graph
                .preds(recv)
                .iter()
                .copied()
                .find(|&p| graph.op(p).kind().is_send());
            match send {
                Some(send) => rank[send.index()] = Some(r as u64),
                None => rank[recv.index()] = Some(r as u64),
            }
        }
    }
    rank
}

struct Engine<'g> {
    graph: &'g Graph,
    schedule: &'g Schedule,
    oracle: CostOracle,
    noise: tictac_timing::NoiseModel,
    reorder_error: f64,
    enforcement: bool,
    disorder_window: usize,
    rng: SmallRng,
    plan: &'g FaultPlan,

    clock: SimTime,
    /// Event payloads, free-listed; the queue carries only handles.
    pool: EventPool<EventKind>,
    /// Pending events in exact `(at, seq)` pop order.
    events: CalendarQueue,
    seq: u64,

    indegree: Vec<u32>,
    done: Vec<bool>,
    started_at: Vec<SimTime>,
    trace: TraceBuilder,
    remaining: usize,

    /// Per-op event generation; bumping it cancels the op's in-flight
    /// events (they are ignored as stale when popped).
    epoch: Vec<u32>,
    /// Per-recv transfer attempts made so far (zero-based).
    attempts: Vec<u32>,
    /// Simulation outcome latches.
    error: Option<SimError>,
    degraded: bool,

    /// Per-device compute state.
    compute_ready: Vec<ReadyQueue>,
    compute_busy: Vec<bool>,
    /// The op running on each device and its scheduled completion (ns).
    inflight_compute: Vec<Option<(OpId, u64)>>,
    /// Device unavailable until this instant (ns; crash or stall).
    device_down_until: Vec<u64>,
    /// Per-worker slowdown factor for this iteration.
    slowdown: Vec<f64>,

    /// Per-channel gRPC state.
    chan_busy: Vec<bool>,
    /// The transfer (recv op) in flight on each channel.
    inflight_recv: Vec<Option<OpId>>,
    /// Channel unavailable until this instant (ns; blackout or endpoint
    /// crash).
    chan_down_until: Vec<u64>,
    /// Enforcement counters: prioritized transfers handed so far.
    counter: Vec<u64>,
    /// Blocked prioritized sends, keyed by rank.
    blocked: Vec<BTreeMap<u64, OpId>>,
    /// Enforcement rank per op (send ops of prioritized transfers).
    rank: Vec<Option<u64>>,
    /// Per-channel queues of handed-off transfers (recv ops).
    chan_queue: Vec<ChanQueue>,
    /// Enforcement rank propagated to the recv side (for queue pops).
    recv_rank: Vec<Option<u64>>,
    /// The send op feeding each recv (transfer pairing).
    send_of: Vec<Option<OpId>>,
    /// Per-channel wire-time stretch factor: the topology fair share
    /// (see [`Platform::transfer_time_shared`]) divided by the channel's
    /// relative bandwidth. Uniform graphs divide by exactly `1.0`, so the
    /// factor — and every transfer duration — is bit-for-bit the
    /// homogeneous value.
    ///
    /// [`Platform::transfer_time_shared`]: tictac_timing::Platform::transfer_time_shared
    chan_share: Vec<f64>,
    /// Registry handles (read-only observation; `None` when disabled).
    metrics: Option<Box<EngineMetrics>>,
}

impl<'g> Engine<'g> {
    fn new(
        graph: &'g Graph,
        schedule: &'g Schedule,
        config: &SimConfig,
        iteration: u64,
        plan: &'g FaultPlan,
    ) -> Self {
        let n = graph.len();
        let mut rng = SmallRng::seed_from_u64(
            config
                .seed
                .wrapping_add(iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );

        // Per-iteration worker slowdowns (system-level variance, §6.3).
        let mut slowdown: Vec<f64> = graph
            .devices()
            .iter()
            .map(|d| {
                if d.is_worker() {
                    config.noise.worker_factor(&mut rng)
                } else {
                    1.0
                }
            })
            .collect();
        // Injected persistent stragglers compound the sampled variance
        // (applied after so the noise stream is untouched by the plan).
        for &(device, factor) in &plan.stragglers {
            slowdown[device.index()] *= factor;
        }

        let rank = enforcement_ranks(graph, schedule);

        let indegree: Vec<u32> = (0..n)
            .map(|i| graph.preds(OpId::from_index(i)).len() as u32)
            .collect();

        let bandwidth_share = config.bandwidth_share_override.unwrap_or_else(|| {
            // PS deployments fan every server out to all workers; pure
            // peer topologies (rings) keep one steady stream per link.
            if graph.channels().iter().all(Channel::is_peer) {
                1.0
            } else {
                let workers = graph.workers().count();
                let servers = graph.parameter_servers().count();
                workers.max(servers).max(1) as f64
            }
        });
        let chan_share: Vec<f64> = (0..graph.channels().len())
            .map(|c| bandwidth_share / graph.channel_bandwidth(ChannelId::from_index(c)))
            .collect();

        Self {
            graph,
            schedule,
            oracle: CostOracle::new(config.platform.clone()),
            noise: config.noise,
            reorder_error: config.reorder_error,
            enforcement: config.enforcement,
            disorder_window: config.disorder_window.unwrap_or(usize::MAX).max(1),
            rng,
            plan,
            clock: SimTime::ZERO,
            pool: EventPool::with_capacity(graph.devices().len() + graph.channels().len()),
            events: CalendarQueue::new(),
            seq: 0,
            indegree,
            done: vec![false; n],
            started_at: vec![SimTime::ZERO; n],
            trace: TraceBuilder::new(n),
            remaining: n,
            epoch: vec![0; n],
            attempts: vec![0; n],
            error: None,
            degraded: false,
            compute_ready: (0..graph.devices().len())
                .map(|_| ReadyQueue::default())
                .collect(),
            compute_busy: vec![false; graph.devices().len()],
            inflight_compute: vec![None; graph.devices().len()],
            device_down_until: vec![0; graph.devices().len()],
            slowdown,
            chan_busy: vec![false; graph.channels().len()],
            inflight_recv: vec![None; graph.channels().len()],
            chan_down_until: vec![0; graph.channels().len()],
            counter: vec![0; graph.channels().len()],
            blocked: vec![BTreeMap::new(); graph.channels().len()],
            rank,
            chan_queue: (0..graph.channels().len())
                .map(|_| ChanQueue::default())
                .collect(),
            recv_rank: vec![None; n],
            send_of: vec![None; n],
            chan_share,
            metrics: None,
        }
    }

    /// Pre-schedules every availability transition of the fault plan plus
    /// the degraded barrier, and logs the iteration-long stragglers.
    /// Quiet plans schedule nothing, keeping the event stream identical to
    /// a fault-free run.
    ///
    /// Plan instants pass through [`FaultClock::virtual_time`] — an exact
    /// identity, since plans are sampled in this engine's own domain. The
    /// threaded runtime maps the same plan through
    /// `FaultClock::wall_clock(time_scale)` instead; the clock is the only
    /// seam between the two interpretations.
    fn schedule_faults(&mut self) {
        let plan = self.plan;
        let clock = FaultClock::virtual_time();
        for &(device, _) in &plan.stragglers {
            self.trace
                .push_fault(SimTime::ZERO, FaultEventKind::StragglerApplied { device });
        }
        for b in &plan.blackouts {
            self.schedule_event(
                clock.instant(b.at),
                EventKind::Fault(FaultAction::BlackoutStart {
                    ch: b.channel.index(),
                    until: clock.instant(b.until).as_nanos(),
                }),
            );
            self.schedule_event(
                clock.instant(b.until),
                EventKind::Fault(FaultAction::BlackoutEnd {
                    ch: b.channel.index(),
                }),
            );
        }
        for c in &plan.crashes {
            self.schedule_event(
                clock.instant(c.at),
                EventKind::Fault(FaultAction::CrashStart {
                    dev: c.device.index(),
                    until: clock.instant(c.until).as_nanos(),
                }),
            );
            self.schedule_event(
                clock.instant(c.until),
                EventKind::Fault(FaultAction::CrashEnd {
                    dev: c.device.index(),
                }),
            );
        }
        for s in &plan.stalls {
            self.schedule_event(
                clock.instant(s.at),
                EventKind::Fault(FaultAction::StallStart {
                    dev: s.device.index(),
                    until: clock.instant(s.until).as_nanos(),
                }),
            );
            self.schedule_event(
                clock.instant(s.until),
                EventKind::Fault(FaultAction::StallEnd {
                    dev: s.device.index(),
                }),
            );
        }
        if let Some(timeout) = plan.barrier_timeout {
            self.schedule_event(SimTime::ZERO + clock.duration(timeout), EventKind::Barrier);
        }
    }

    fn run(mut self) -> Result<ExecutionTrace, SimError> {
        self.schedule_faults();

        // Dispatch roots.
        for i in 0..self.graph.len() {
            if self.indegree[i] == 0 {
                self.dispatch(OpId::from_index(i));
            }
        }
        self.pump();

        while self.remaining > 0 {
            let Some((at, _seq, handle)) = self.events.pop_min() else {
                break;
            };
            let kind = self.pool.take(handle);
            if let Some(m) = &self.metrics {
                m.events.inc();
            }
            self.clock = SimTime::from_nanos(at);
            match kind {
                EventKind::ComputeDone(op, epoch) => {
                    if epoch != self.epoch[op.index()] {
                        continue; // cancelled by a crash or stall
                    }
                    self.on_compute_done(op);
                }
                EventKind::TransferDone(op, epoch) => {
                    if epoch != self.epoch[op.index()] {
                        continue; // the attempt was killed mid-flight
                    }
                    self.on_transfer_done(op);
                }
                EventKind::TransferTimeout(op, epoch) => {
                    if epoch != self.epoch[op.index()] {
                        continue; // detection restarted by a later fault
                    }
                    self.on_transfer_timeout(op);
                }
                EventKind::Fault(action) => self.on_fault(action),
                EventKind::Barrier => self.on_barrier(),
            }
            if self.error.is_some() || self.degraded {
                break;
            }
            self.pump();
        }

        if let Some(e) = self.error {
            return Err(e);
        }
        if self.remaining > 0 && !self.degraded {
            return Err(SimError::Deadlock {
                completed: self.graph.len() - self.remaining,
                remaining: self.remaining,
                at: self.clock,
            });
        }
        let trace = self.trace.finish();
        if let Some(m) = &self.metrics {
            m.finish(trace.makespan());
        }
        Ok(trace)
    }

    /// Runs all synchronous starts enabled by the current state.
    fn pump(&mut self) {
        loop {
            let mut progressed = false;
            for d in 0..self.compute_busy.len() {
                progressed |= self.try_start_compute(d);
            }
            progressed |= self.try_start_transfers();
            if !progressed {
                break;
            }
        }
    }

    fn schedule_event(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        let handle = self.pool.alloc(kind);
        self.events.push(at.as_nanos(), self.seq, handle);
    }

    /// Routes an op whose dependencies are all satisfied.
    fn dispatch(&mut self, op: OpId) {
        match self.graph.op(op).kind() {
            OpKind::Send { .. } => self.try_handoff(op),
            OpKind::Recv { .. } => {
                // Handed to the network (its send completed): queue the
                // transfer on its channel, carrying the sender's rank.
                let ch = self
                    .graph
                    .op(op)
                    .kind()
                    .channel()
                    .expect("recv has a channel")
                    .index();
                let send = self
                    .graph
                    .preds(op)
                    .iter()
                    .copied()
                    .find(|&p| self.graph.op(p).kind().is_send());
                self.send_of[op.index()] = send;
                // Rank lives on the send for PS-built graphs, on the recv
                // itself for sendless (hand-built) ones.
                self.recv_rank[op.index()] = send
                    .and_then(|s| self.rank[s.index()])
                    .or(self.rank[op.index()]);
                self.chan_queue[ch].push(op, self.recv_rank[op.index()]);
            }
            _ => {
                let dev = self.graph.op(op).device().index();
                self.compute_ready[dev].push(op, self.schedule.priority(op));
            }
        }
    }

    /// Sender-side enforcement: a ranked transfer is handed to the channel
    /// only when its channel counter reaches its rank (§5.1).
    fn try_handoff(&mut self, send: OpId) {
        let ch = self
            .graph
            .op(send)
            .kind()
            .channel()
            .expect("send has a channel")
            .index();
        match self.rank[send.index()] {
            Some(r) if self.enforcement && self.counter[ch] != r => {
                self.blocked[ch].insert(r, send);
            }
            _ => self.complete_send(send),
        }
    }

    /// Completes a send (instantaneous hand-off), bumps the enforcement
    /// counter and releases any newly-unblocked sends on the same channel.
    ///
    /// The send op is *not* traced here: the trace attributes the transfer
    /// interval to both endpoints once the wire time is known (TF's tracer
    /// likewise reports transfer time at the send op), so recording happens
    /// in [`on_transfer_done`](Self::on_transfer_done).
    fn complete_send(&mut self, send: OpId) {
        let mut stack = vec![send];
        while let Some(s) = stack.pop() {
            self.mark_done(s);
            if let Some(r) = self.rank[s.index()] {
                if self.enforcement {
                    let ch = self
                        .graph
                        .op(s)
                        .kind()
                        .channel()
                        .expect("send has a channel")
                        .index();
                    debug_assert_eq!(self.counter[ch], r);
                    self.counter[ch] += 1;
                    if let Some(next) = self.blocked[ch].remove(&self.counter[ch]) {
                        stack.push(next);
                    }
                }
            }
        }
    }

    /// Starts the next transfer on every idle, reachable channel. Channels
    /// proceed concurrently at fair-shared bandwidth; blacked-out channels
    /// (and channels of crashed workers) hold their queues until the
    /// outage ends.
    ///
    /// Queue discipline per channel: transfers carrying an enforcement
    /// rank go lowest-rank-first (they are handed off in rank order by the
    /// sender-side counters, so this is gRPC's FIFO); unranked transfers —
    /// all of them under the baseline — are picked uniformly at random,
    /// reflecting that TensorFlow transfers are receiver-initiated and
    /// request arrival order at each worker's channel is arbitrary (§2.2).
    /// With probability `reorder_error` the channel instead takes a random
    /// queued transfer, emulating gRPC's occasional out-of-order
    /// processing of enforced hand-offs (§5.1). Retransmits re-enter the
    /// queue and compete under the same discipline, so enforced rank order
    /// survives transfer loss.
    fn try_start_transfers(&mut self) -> bool {
        let mut progressed = false;
        for ch in 0..self.chan_queue.len() {
            if self.chan_busy[ch]
                || self.chan_queue[ch].is_empty()
                || self.chan_down_until[ch] > self.clock.as_nanos()
            {
                continue;
            }
            // RNG draw-order contract (DESIGN.md §7): the reorder-error
            // draw happens exactly when a ranked transfer is queued AND at
            // least two transfers are queued; the disorder-window draw
            // spans the live queue in hand-off order — both identical to
            // the seed engine's flat-Vec scan.
            let len = self.chan_queue[ch].live();
            if let Some(m) = &self.metrics {
                m.chan_queue_depth[ch].observe(len as u64);
            }
            let take_ranked = self.chan_queue[ch].has_ranked()
                && !(len >= 2 && self.rng.gen::<f64>() < self.reorder_error);
            let recv = if take_ranked {
                self.chan_queue[ch].pop_min_rank()
            } else {
                // Unranked pops are locally disordered: pick among the
                // oldest `disorder_window` queued transfers.
                let pick = self.rng.gen_range(0..len.min(self.disorder_window));
                self.chan_queue[ch].pop_live_index(pick)
            };
            self.start_transfer(ch, recv);
            progressed = true;
        }
        progressed
    }

    fn start_transfer(&mut self, ch: usize, recv: OpId) {
        self.chan_busy[ch] = true;
        self.inflight_recv[ch] = Some(recv);
        let bytes = self.graph.op(recv).cost().bytes;
        let base = self
            .oracle
            .platform()
            .transfer_time_scaled(bytes, self.chan_share[ch]);
        // The wire-time draw happens whether or not the attempt survives,
        // so the noise stream is independent of drop decisions.
        let dur = self.noise.apply(&mut self.rng, base);
        self.started_at[recv.index()] = self.clock;
        let epoch = self.epoch[recv.index()];
        let attempt = self.attempts[recv.index()];
        if self.plan.drops_attempt(recv, attempt) {
            // Lost on the wire: the receiver only notices when the
            // loss-detection timeout for this attempt fires; the channel
            // stays wedged on the failed stream until then.
            self.trace.push_fault(
                self.clock,
                FaultEventKind::TransferDropped { op: recv, attempt },
            );
            let timeout = self.plan.retry.timeout_for(attempt);
            self.schedule_event(
                self.clock + timeout,
                EventKind::TransferTimeout(recv, epoch),
            );
        } else {
            self.schedule_event(self.clock + dur, EventKind::TransferDone(recv, epoch));
        }
    }

    /// Kills the transfer in flight on `ch` (endpoint crash or blackout):
    /// the attempt's completion is cancelled and loss detection restarts
    /// now, as if the outage reset the stream.
    fn kill_inflight_transfer(&mut self, ch: usize) {
        if let Some(recv) = self.inflight_recv[ch].take() {
            self.epoch[recv.index()] += 1;
            let attempt = self.attempts[recv.index()];
            self.trace.push_fault(
                self.clock,
                FaultEventKind::TransferDropped { op: recv, attempt },
            );
            let timeout = self.plan.retry.timeout_for(attempt);
            let epoch = self.epoch[recv.index()];
            self.schedule_event(
                self.clock + timeout,
                EventKind::TransferTimeout(recv, epoch),
            );
        }
    }

    /// The ready-queue rule of §3.1: candidates are the ready ops with the
    /// lowest priority number plus all unprioritized ready ops; the pick
    /// among candidates is uniformly random. Crashed or stalled devices
    /// start nothing until they come back.
    fn try_start_compute(&mut self, dev: usize) -> bool {
        if self.compute_busy[dev]
            || self.compute_ready[dev].is_empty()
            || self.device_down_until[dev] > self.clock.as_nanos()
        {
            return false;
        }
        if let Some(m) = &self.metrics {
            m.dev_ready_depth[dev].observe(self.compute_ready[dev].candidates() as u64);
        }
        // Locally disordered pick: uniform over the oldest
        // `disorder_window` candidates (unprioritized plus minimum-bucket
        // ready ops, in readiness order — the same candidate list the seed
        // engine's per-pick scan produced, so the RNG draw is identical).
        let window = self.compute_ready[dev]
            .candidates()
            .min(self.disorder_window);
        let chosen = self.rng.gen_range(0..window);
        let op = self.compute_ready[dev].take_candidate(chosen);

        self.compute_busy[dev] = true;
        let base = self.oracle.duration(self.graph, op);
        let dur = self
            .noise
            .apply(&mut self.rng, base)
            .mul_f64(self.slowdown[dev]);
        self.started_at[op.index()] = self.clock;
        let end = self.clock + dur;
        self.inflight_compute[dev] = Some((op, end.as_nanos()));
        let epoch = self.epoch[op.index()];
        self.schedule_event(end, EventKind::ComputeDone(op, epoch));
        true
    }

    fn on_compute_done(&mut self, op: OpId) {
        let dev = self.graph.op(op).device().index();
        self.compute_busy[dev] = false;
        self.inflight_compute[dev] = None;
        if let Some(m) = &self.metrics {
            m.dev_busy_ns[dev].add(
                self.clock
                    .duration_since(self.started_at[op.index()])
                    .as_nanos(),
            );
            m.dev_ops[dev].inc();
        }
        self.trace
            .record(op, self.started_at[op.index()], self.clock);
        self.mark_done(op);
    }

    fn on_transfer_done(&mut self, recv: OpId) {
        let ch_id = self.graph.op(recv).kind().channel().expect("recv channel");
        self.chan_busy[ch_id.index()] = false;
        self.inflight_recv[ch_id.index()] = None;
        let start = self.started_at[recv.index()];
        if let Some(m) = &self.metrics {
            let ch = ch_id.index();
            m.chan_bytes[ch].add(self.graph.op(recv).cost().bytes);
            m.chan_transfers[ch].inc();
            m.chan_busy_ns[ch].add(self.clock.duration_since(start).as_nanos());
        }
        self.trace.record(recv, start, self.clock);
        // Attribute the same interval to the sending end (already `done`
        // for dependency purposes at hand-off time).
        if let Some(send) = self.send_of[recv.index()] {
            self.trace.record(send, start, self.clock);
        }
        self.mark_done(recv);
    }

    /// A transfer attempt was declared lost: free the channel, then either
    /// retransmit (within budget) or give up — a hard error unless a
    /// degraded barrier will absorb the loss.
    fn on_transfer_timeout(&mut self, recv: OpId) {
        let ch = self
            .graph
            .op(recv)
            .kind()
            .channel()
            .expect("recv channel")
            .index();
        self.chan_busy[ch] = false;
        if self.inflight_recv[ch] == Some(recv) {
            self.inflight_recv[ch] = None;
        }
        let attempt = self.attempts[recv.index()];
        self.trace.push_fault(
            self.clock,
            FaultEventKind::TransferTimeout { op: recv, attempt },
        );
        let next = attempt + 1;
        self.attempts[recv.index()] = next;
        if self.plan.retry.attempt_allowed(next) {
            if let Some(m) = &self.metrics {
                m.retransmits.inc();
            }
            self.trace.push_fault(
                self.clock,
                FaultEventKind::Retransmit {
                    op: recv,
                    attempt: next,
                },
            );
            self.chan_queue[ch].push(recv, self.recv_rank[recv.index()]);
        } else if self.plan.barrier_timeout.is_none() {
            self.error = Some(SimError::RetriesExhausted {
                op: recv,
                attempts: next,
                at: self.clock,
            });
        }
        // With a barrier configured, the abandoned transfer is left
        // incomplete and deferred when the barrier fires.
    }

    fn on_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::BlackoutStart { ch, until } => {
                self.chan_down_until[ch] = self.chan_down_until[ch].max(until);
                self.trace.push_fault(
                    self.clock,
                    FaultEventKind::BlackoutStart {
                        channel: ChannelId::from_index(ch),
                    },
                );
                self.kill_inflight_transfer(ch);
            }
            FaultAction::BlackoutEnd { ch } => {
                self.trace.push_fault(
                    self.clock,
                    FaultEventKind::BlackoutEnd {
                        channel: ChannelId::from_index(ch),
                    },
                );
            }
            FaultAction::CrashStart { dev, until } => {
                self.device_down_until[dev] = self.device_down_until[dev].max(until);
                self.trace.push_fault(
                    self.clock,
                    FaultEventKind::WorkerCrashed {
                        device: DeviceId::from_index(dev),
                    },
                );
                // In-flight compute is lost and re-run after recovery.
                if let Some((op, _)) = self.inflight_compute[dev].take() {
                    self.epoch[op.index()] += 1;
                    self.compute_busy[dev] = false;
                    self.compute_ready[dev].push(op, self.schedule.priority(op));
                }
                // The crashed worker's channels go dark; in-flight
                // transfers on them are lost and retried after detection.
                for ch in 0..self.graph.channels().len() {
                    if self.graph.channels()[ch].worker().index() == dev {
                        self.chan_down_until[ch] = self.chan_down_until[ch].max(until);
                        self.kill_inflight_transfer(ch);
                    }
                }
            }
            FaultAction::CrashEnd { dev } => {
                self.trace.push_fault(
                    self.clock,
                    FaultEventKind::WorkerRecovered {
                        device: DeviceId::from_index(dev),
                    },
                );
            }
            FaultAction::StallStart { dev, until } => {
                self.device_down_until[dev] = self.device_down_until[dev].max(until);
                self.trace.push_fault(
                    self.clock,
                    FaultEventKind::PsStallStart {
                        device: DeviceId::from_index(dev),
                    },
                );
                // Pause semantics: the in-flight update is not lost, it
                // finishes late by the stall length.
                if let Some((op, end)) = self.inflight_compute[dev] {
                    self.epoch[op.index()] += 1;
                    let pause = until.saturating_sub(self.clock.as_nanos());
                    let new_end = end.saturating_add(pause);
                    self.inflight_compute[dev] = Some((op, new_end));
                    let epoch = self.epoch[op.index()];
                    self.schedule_event(
                        SimTime::from_nanos(new_end),
                        EventKind::ComputeDone(op, epoch),
                    );
                }
            }
            FaultAction::StallEnd { dev } => {
                self.trace.push_fault(
                    self.clock,
                    FaultEventKind::PsStallEnd {
                        device: DeviceId::from_index(dev),
                    },
                );
            }
        }
    }

    /// Degraded-mode sync barrier (fault-tolerant execution): if work is
    /// still outstanding when the barrier timeout expires, the iteration
    /// completes anyway and the stragglers' remaining ops are deferred to
    /// the next iteration.
    fn on_barrier(&mut self) {
        if self.remaining == 0 {
            return;
        }
        for i in 0..self.graph.len() {
            if !self.done[i] {
                self.trace.push_fault(
                    self.clock,
                    FaultEventKind::DeferredOp {
                        op: OpId::from_index(i),
                    },
                );
            }
        }
        self.trace.push_fault(
            self.clock,
            FaultEventKind::BarrierDegraded {
                remaining: self.remaining as u32,
            },
        );
        self.trace.raise_makespan(self.clock);
        self.degraded = true;
    }

    /// Marks an op complete and dispatches newly-ready successors.
    fn mark_done(&mut self, op: OpId) {
        debug_assert!(!self.done[op.index()], "op {op} completed twice");
        self.done[op.index()] = true;
        self.remaining -= 1;
        for i in 0..self.graph.succs(op).len() {
            let succ = self.graph.succs(op)[i];
            self.indegree[succ.index()] -= 1;
            if self.indegree[succ.index()] == 0 {
                self.dispatch(succ);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_faults::FaultSpec;
    use tictac_graph::{Cost, GraphBuilder};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_sched::no_ordering;
    use tictac_timing::{Platform, RetryPolicy, SimDuration};

    fn fig1a() -> (Graph, [OpId; 6]) {
        // Full Figure 1a including PS side, sized so the recv order
        // visibly matters: equal transfers, equal computes.
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let mb = 8 << 20;
        let p1 = b.add_param("p1", mb);
        let p2 = b.add_param("p2", mb);
        let r_read1 = b.add_op(
            "read1",
            ps,
            OpKind::Read { param: p1 },
            Cost::flops(1.0),
            &[],
        );
        let r_read2 = b.add_op(
            "read2",
            ps,
            OpKind::Read { param: p2 },
            Cost::flops(1.0),
            &[],
        );
        let s1 = b.add_op(
            "send1",
            ps,
            OpKind::send(p1, ch),
            Cost::bytes(mb),
            &[r_read1],
        );
        let s2 = b.add_op(
            "send2",
            ps,
            OpKind::send(p2, ch),
            Cost::bytes(mb),
            &[r_read2],
        );
        let r1 = b.add_op("recv1", w, OpKind::recv(p1, ch), Cost::bytes(mb), &[s1]);
        let r2 = b.add_op("recv2", w, OpKind::recv(p2, ch), Cost::bytes(mb), &[s2]);
        let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(1e10), &[r1]);
        let op2 = b.add_op("op2", w, OpKind::Compute, Cost::flops(1e10), &[op1, r2]);
        (b.build().unwrap(), [s1, s2, r1, r2, op1, op2])
    }

    #[test]
    fn ready_queue_merges_pools_in_push_order() {
        let op = OpId::from_index;
        let mut q = ReadyQueue::default();
        q.push(op(0), None); // seq 1, unprio
        q.push(op(1), Some(5)); // seq 2, bucket 5
        q.push(op(2), Some(3)); // seq 3, bucket 3 (min)
        q.push(op(3), None); // seq 4, unprio
        q.push(op(4), Some(3)); // seq 5, bucket 3
                                // Candidates = unprio {0, 3} + min bucket {2, 4}, in push order:
                                // [0, 2, 3, 4]; op 1 (bucket 5) is not a candidate.
        assert_eq!(q.candidates(), 4);
        assert_eq!(q.take_candidate(2), op(3));
        assert_eq!(q.take_candidate(1), op(2));
        // Bucket 3 now holds only op 4; candidates = [0, 4].
        assert_eq!(q.candidates(), 2);
        assert_eq!(q.take_candidate(1), op(4));
        // Bucket 3 drained: bucket 5 becomes the minimum.
        assert_eq!(q.candidates(), 2);
        assert_eq!(q.take_candidate(1), op(1));
        assert_eq!(q.take_candidate(0), op(0));
        assert!(q.is_empty());
    }

    #[test]
    fn chan_queue_ranked_and_live_index_pops() {
        let op = OpId::from_index;
        let mut q = ChanQueue::default();
        q.push(op(0), None);
        q.push(op(1), Some(7));
        q.push(op(2), Some(2));
        q.push(op(3), None);
        assert_eq!(q.live(), 4);
        assert!(q.has_ranked());
        // Lowest rank first, regardless of queue position.
        assert_eq!(q.pop_min_rank(), op(2));
        // Live index skips the tombstone left behind: [0, 1, 3].
        assert_eq!(q.pop_live_index(1), op(1));
        assert!(!q.has_ranked());
        assert_eq!(q.pop_live_index(1), op(3));
        assert_eq!(q.pop_live_index(0), op(0));
        assert!(q.is_empty());
        // Requeue after drain (retransmit path): ranks come back.
        q.push(op(2), Some(2));
        assert!(q.has_ranked());
        assert_eq!(q.pop_min_rank(), op(2));
    }

    #[test]
    fn good_order_beats_bad_order_as_in_figure_1() {
        let (g, [_, _, r1, r2, ..]) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster());

        let mut good = Schedule::empty(g.len());
        good.set(r1, 0);
        good.set(r2, 1);
        let mut bad = Schedule::empty(g.len());
        bad.set(r1, 1);
        bad.set(r2, 0);

        let t_good = simulate(&g, &good, &cfg, 0);
        let t_bad = simulate(&g, &bad, &cfg, 0);
        assert!(
            t_good.makespan() < t_bad.makespan(),
            "good {} vs bad {}",
            t_good.makespan(),
            t_bad.makespan()
        );
    }

    #[test]
    fn enforced_order_is_respected() {
        let (g, [_, _, r1, r2, ..]) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster());
        let mut s = Schedule::empty(g.len());
        s.set(r1, 1);
        s.set(r2, 0); // deliberately reversed
        let trace = simulate(&g, &s, &cfg, 0);
        let w = g.devices()[0].id();
        assert_eq!(trace.recv_completion_order(&g, w), vec![r2, r1]);
    }

    #[test]
    fn all_ops_execute_exactly_once() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(3, 2)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let trace = simulate(d.graph(), &no_ordering(d.graph()), &cfg, 0);
        assert_eq!(trace.executed_ops(), d.graph().len());
        assert!(trace.makespan() > SimDuration::ZERO);
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let s = no_ordering(d.graph());
        let a = simulate(d.graph(), &s, &cfg, 0);
        let b = simulate(d.graph(), &s, &cfg, 0);
        assert_eq!(a, b);
        let c = simulate(d.graph(), &s, &cfg, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn baseline_produces_varying_recv_orders() {
        let model = tictac_models::Model::InceptionV1.build_with_batch(Mode::Inference, 4);
        let d = deploy(&model, &ClusterSpec::new(1, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let s = no_ordering(d.graph());
        let w = d.workers()[0];
        let o1 = simulate(d.graph(), &s, &cfg, 0).recv_completion_order(d.graph(), w);
        let o2 = simulate(d.graph(), &s, &cfg, 1).recv_completion_order(d.graph(), w);
        assert_ne!(o1, o2, "random schedules should differ across iterations");
    }

    #[test]
    fn tic_schedule_fixes_recv_order_across_iterations() {
        let model = tictac_models::Model::InceptionV1.build_with_batch(Mode::Inference, 4);
        let d = deploy(&model, &ClusterSpec::new(1, 1)).unwrap();
        // No reorder errors for exactness.
        let cfg = SimConfig::cloud_gpu().with_reorder_error(0.0);
        let s = d.replicate_schedule(&tictac_sched::tic(d.graph(), d.workers()[0]));
        let w = d.workers()[0];
        let o1 = simulate(d.graph(), &s, &cfg, 0).recv_completion_order(d.graph(), w);
        let o2 = simulate(d.graph(), &s, &cfg, 7).recv_completion_order(d.graph(), w);
        assert_eq!(o1, o2, "enforced schedules must be stable");
    }

    #[test]
    fn prioritized_sendless_recvs_are_still_ordered() {
        // Hand-built graphs may model recvs as pure roots (no PS send op);
        // a schedule over them must neither panic nor be ignored.
        let mut b = tictac_graph::GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let mut recvs = Vec::new();
        for i in 0..4 {
            let p = b.add_param(format!("p{i}"), 1 << 20);
            recvs.push(b.add_op(
                format!("recv{i}"),
                w,
                OpKind::recv(p, ch),
                Cost::bytes(1 << 20),
                &[],
            ));
        }
        let g = b.build().unwrap();
        let mut s = Schedule::empty(g.len());
        for (rank, &r) in recvs.iter().rev().enumerate() {
            s.set(r, rank as u64);
        }
        let cfg = SimConfig::deterministic(Platform::cloud_gpu());
        let trace = simulate(&g, &s, &cfg, 0);
        let order = trace.recv_completion_order(&g, w);
        let expected: Vec<OpId> = recvs.into_iter().rev().collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn transfers_on_one_channel_serialize() {
        let (g, [_, _, r1, r2, ..]) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster());
        let trace = simulate(&g, &no_ordering(&g), &cfg, 3);
        let a = trace.record(r1).unwrap();
        let b = trace.record(r2).unwrap();
        assert!(
            a.end <= b.start || b.end <= a.start,
            "overlapping transfers on one channel: {a:?} vs {b:?}"
        );
    }

    #[test]
    fn quiet_faults_leave_traces_untouched() {
        let (g, _) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster());
        let clean = simulate(&g, &no_ordering(&g), &cfg, 0);
        assert!(clean.fault_events().is_empty());
        // try_simulate with a quiet spec is the same simulation.
        let again = try_simulate(&g, &no_ordering(&g), &cfg, 0).unwrap();
        assert_eq!(clean, again);
    }

    #[test]
    fn schedule_mismatch_is_a_typed_error() {
        let (g, _) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster());
        let bad = Schedule::empty(g.len() + 1);
        match try_simulate(&g, &bad, &cfg, 0) {
            Err(SimError::ScheduleMismatch { graph_len, .. }) => assert_eq!(graph_len, g.len()),
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn dropped_transfers_are_retransmitted_to_completion() {
        let (g, _) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster()).with_faults(
            FaultSpec::none()
                .with_drop_prob(0.5)
                .with_retry(RetryPolicy::fixed(SimDuration::from_millis(20), 30)),
        );
        let clean = simulate(
            &g,
            &no_ordering(&g),
            &SimConfig::deterministic(Platform::cpu_cluster()),
            0,
        );
        // Some iteration in 0..8 must observe at least one drop at 50%.
        let mut saw_drop = false;
        for i in 0..8 {
            let trace = try_simulate(&g, &no_ordering(&g), &cfg, i).unwrap();
            assert_eq!(trace.executed_ops(), g.len());
            if !trace.fault_events().is_empty() {
                saw_drop = true;
                assert!(
                    trace.makespan() > clean.makespan(),
                    "recovery must cost time"
                );
            }
        }
        assert!(saw_drop, "50% drop rate never triggered in 8 iterations");
    }

    #[test]
    fn exhausted_retries_error_without_a_barrier() {
        let (g, _) = fig1a();
        let cfg = SimConfig::deterministic(Platform::cpu_cluster()).with_faults(
            FaultSpec::none()
                .with_drop_prob(1.0)
                .with_retry(RetryPolicy::fixed(SimDuration::from_millis(1), 2)),
        );
        match try_simulate(&g, &no_ordering(&g), &cfg, 0) {
            Err(SimError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected retry exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn barrier_degrades_instead_of_failing() {
        let (g, _) = fig1a();
        let barrier = SimDuration::from_millis(400);
        let cfg = SimConfig::deterministic(Platform::cpu_cluster()).with_faults(
            FaultSpec::none()
                .with_drop_prob(1.0)
                .with_retry(RetryPolicy::fixed(SimDuration::from_millis(1), 2))
                .with_barrier_timeout(barrier),
        );
        let trace = try_simulate(&g, &no_ordering(&g), &cfg, 0).unwrap();
        assert!(trace.executed_ops() < g.len(), "work must be deferred");
        assert_eq!(trace.makespan(), barrier);
        let deferred = trace
            .fault_events()
            .iter()
            .filter(|e| matches!(e.kind, FaultEventKind::DeferredOp { .. }))
            .count();
        assert!(deferred > 0);
        assert!(trace
            .fault_events()
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::BarrierDegraded { .. })));
    }

    #[test]
    fn crashed_workers_recover_and_finish() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        // Onsets must land inside the iteration (clean makespan ~540us).
        let cfg = SimConfig::cloud_gpu().with_faults(
            FaultSpec::none()
                .with_crashes(1.0, SimDuration::from_micros(80))
                .with_onset_window(SimDuration::from_micros(200)),
        );
        let trace = try_simulate(d.graph(), &no_ordering(d.graph()), &cfg, 0).unwrap();
        assert_eq!(trace.executed_ops(), d.graph().len());
        let crashes = trace
            .fault_events()
            .iter()
            .filter(|e| matches!(e.kind, FaultEventKind::WorkerCrashed { .. }))
            .count();
        let recoveries = trace
            .fault_events()
            .iter()
            .filter(|e| matches!(e.kind, FaultEventKind::WorkerRecovered { .. }))
            .count();
        assert_eq!(crashes, 2);
        assert_eq!(recoveries, 2);
    }

    #[test]
    fn blackouts_and_stalls_delay_but_complete() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 2)).unwrap();
        let clean_cfg = SimConfig::deterministic(Platform::cloud_gpu());
        let clean = simulate(d.graph(), &no_ordering(d.graph()), &clean_cfg, 0);
        let cfg = clean_cfg.clone().with_faults(
            FaultSpec::none()
                .with_blackouts(1.0, SimDuration::from_millis(3))
                .with_ps_stalls(1.0, SimDuration::from_millis(4))
                .with_onset_window(SimDuration::from_millis(1)),
        );
        let trace = try_simulate(d.graph(), &no_ordering(d.graph()), &cfg, 0).unwrap();
        assert_eq!(trace.executed_ops(), d.graph().len());
        assert!(trace.makespan() >= clean.makespan());
        assert!(trace
            .fault_events()
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::BlackoutStart { .. })));
        assert!(trace
            .fault_events()
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::PsStallStart { .. })));
    }

    #[test]
    fn observed_runs_match_unobserved_and_populate_metrics() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let s = no_ordering(d.graph());
        let plain = try_simulate(d.graph(), &s, &cfg, 0).unwrap();
        let registry = Registry::enabled();
        let observed = try_simulate_observed(d.graph(), &s, &cfg, 0, &registry).unwrap();
        assert_eq!(plain, observed, "observation must not perturb the run");

        let snap = registry.snapshot();
        assert!(snap.counter("sim.events").unwrap() > 0);
        assert_eq!(snap.counter("sim.retransmits"), Some(0));
        let compute_ops: u64 = (0..d.graph().devices().len())
            .map(|i| snap.counter(&format!("sim.dev{i}.ops")).unwrap())
            .sum();
        let transfers: u64 = (0..d.graph().channels().len())
            .map(|i| snap.counter(&format!("sim.chan{i}.transfers")).unwrap())
            .sum();
        let sends = d.graph().count_ops(|op| op.kind().is_send()) as u64;
        // Every op executes once: transfers cover send+recv pairs, compute
        // ops cover the rest.
        assert_eq!(transfers, sends);
        assert_eq!(compute_ops + 2 * transfers, d.graph().len() as u64);
        let bytes: u64 = (0..d.graph().channels().len())
            .map(|i| snap.counter(&format!("sim.chan{i}.bytes")).unwrap())
            .sum();
        assert!(bytes > 0);
        // Idle gauges exist and are bounded by the makespan.
        match snap.get("sim.chan0.idle_ns") {
            Some(tictac_obs::MetricValue::Gauge(idle)) => {
                assert!(*idle >= 0.0 && *idle <= plain.makespan().as_nanos() as f64);
            }
            other => panic!("expected idle gauge, got {other:?}"),
        }
        // A disabled registry records nothing.
        let disabled = Registry::disabled();
        let again = try_simulate_observed(d.graph(), &s, &cfg, 0, &disabled).unwrap();
        assert_eq!(plain, again);
        assert!(disabled.snapshot().entries.is_empty());
    }

    #[test]
    fn faulty_runs_replay_exactly_with_an_explicit_plan() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu().with_faults(
            FaultSpec::none()
                .with_drop_prob(0.2)
                .with_crashes(0.5, SimDuration::from_millis(10))
                .with_retry(RetryPolicy::fixed(SimDuration::from_millis(5), 30)),
        );
        let s = no_ordering(d.graph());
        let plan = FaultPlan::sample(&cfg.faults, d.graph(), cfg.seed, 3);
        let a = simulate_with_plan(d.graph(), &s, &cfg, 3, &plan).unwrap();
        let b = simulate_with_plan(d.graph(), &s, &cfg, 3, &plan).unwrap();
        assert_eq!(a, b, "same plan, same trace — bytes and all");
        let c = try_simulate(d.graph(), &s, &cfg, 3).unwrap();
        assert_eq!(a, c, "try_simulate samples exactly this plan");
    }
}
