//! Typed simulation failures.

use std::fmt;
use tictac_graph::OpId;
use tictac_timing::SimTime;

/// Why a simulation could not produce a complete trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The schedule does not cover the graph (length mismatch).
    ScheduleMismatch {
        /// Ops covered by the schedule.
        schedule_len: usize,
        /// Ops in the graph.
        graph_len: usize,
    },
    /// The event queue drained with ops outstanding and no degraded
    /// barrier to release them (impossible for builder-validated DAGs
    /// without fault injection).
    Deadlock {
        /// Ops that completed.
        completed: usize,
        /// Ops left incomplete.
        remaining: usize,
        /// Virtual time when progress stopped.
        at: SimTime,
    },
    /// A transfer exhausted its retry budget and no degraded barrier was
    /// configured to absorb the loss.
    RetriesExhausted {
        /// The recv op of the failed transfer.
        op: OpId,
        /// Attempts made (initial send plus retransmits).
        attempts: u32,
        /// Virtual time of the final timeout.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScheduleMismatch {
                schedule_len,
                graph_len,
            } => write!(
                f,
                "schedule does not cover graph: {schedule_len} priorities for {graph_len} ops"
            ),
            SimError::Deadlock {
                completed,
                remaining,
                at,
            } => write!(
                f,
                "simulation deadlocked at {at}: {completed} ops done, {remaining} outstanding"
            ),
            SimError::RetriesExhausted { op, attempts, at } => write!(
                f,
                "transfer {op} exhausted its retry budget ({attempts} attempts) at {at}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let e = SimError::ScheduleMismatch {
            schedule_len: 3,
            graph_len: 5,
        };
        assert!(e.to_string().contains("schedule does not cover graph"));
        let e = SimError::Deadlock {
            completed: 2,
            remaining: 1,
            at: SimTime::from_nanos(10),
        };
        assert!(e.to_string().contains("deadlocked"));
        let e = SimError::RetriesExhausted {
            op: OpId::from_index(4),
            attempts: 5,
            at: SimTime::from_nanos(10),
        };
        assert!(e.to_string().contains("retry budget"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
