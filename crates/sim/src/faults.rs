//! Seeded fault injection: probabilistic specifications and the concrete
//! per-iteration plans sampled from them.
//!
//! A [`FaultSpec`] describes *rates* — how likely each fault class is per
//! iteration — and the recovery policy ([`RetryPolicy`], degraded-barrier
//! timeout). A [`FaultPlan`] is one reproducible draw from that
//! specification for a particular `(seed, iteration)`: the exact channels
//! blacked out, workers crashed, stragglers slowed and shards stalled,
//! plus a dedicated RNG stream for per-attempt transfer drops. Sampling is
//! independent of the engine's noise stream, so enabling faults perturbs
//! the injected failures only, never the underlying runtime variance, and
//! a quiet spec leaves the simulation byte-identical to a fault-free run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tictac_graph::{ChannelId, DeviceId, Graph};
use tictac_timing::{RetryPolicy, SimDuration, SimTime};

/// Stream tag separating fault sampling from the engine's noise RNG.
const FAULT_STREAM: u64 = 0xFA17_5EED_0DD5_ED17;

/// Probabilistic fault model of one deployment.
///
/// All probabilities are per *iteration* (per channel, worker or
/// parameter server as appropriate). The quiet default —
/// [`FaultSpec::none`] — injects nothing and leaves the simulator's
/// behaviour exactly as if the fault subsystem did not exist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability that any individual transfer attempt is lost on the
    /// wire (transient loss; detected by timeout, recovered by
    /// retransmit).
    pub drop_prob: f64,
    /// Probability that a channel suffers one blackout window during the
    /// iteration.
    pub blackout_prob: f64,
    /// Length of a channel blackout.
    pub blackout: SimDuration,
    /// Probability that a worker crashes once during the iteration.
    pub crash_prob: f64,
    /// Time a crashed worker is down before it recovers and re-runs lost
    /// work.
    pub crash_downtime: SimDuration,
    /// Probability that a worker is a persistent straggler for the whole
    /// iteration.
    pub straggler_prob: f64,
    /// Compute slowdown factor applied to a straggling worker (`>= 1`).
    pub straggler_factor: f64,
    /// Probability that a parameter server's update thread stalls once
    /// during the iteration.
    pub ps_stall_prob: f64,
    /// Length of a parameter-server stall.
    pub ps_stall: SimDuration,
    /// Fault onsets (blackouts, crashes, stalls) are sampled uniformly in
    /// `[0, onset_window)` of virtual time.
    pub onset_window: SimDuration,
    /// Loss detection and retransmit policy for dropped transfers.
    pub retry: RetryPolicy,
    /// Degraded-mode sync barrier: when set, the iteration completes at
    /// this virtual time even if ops are outstanding; the stragglers'
    /// updates are deferred to the next iteration. When `None`, an
    /// exhausted retry budget is a hard [`SimError`].
    ///
    /// [`SimError`]: crate::SimError
    pub barrier_timeout: Option<SimDuration>,
}

impl FaultSpec {
    /// The quiet specification: no faults, no barrier.
    pub fn none() -> Self {
        Self {
            drop_prob: 0.0,
            blackout_prob: 0.0,
            blackout: SimDuration::from_millis(20),
            crash_prob: 0.0,
            crash_downtime: SimDuration::from_millis(100),
            straggler_prob: 0.0,
            straggler_factor: 2.0,
            ps_stall_prob: 0.0,
            ps_stall: SimDuration::from_millis(50),
            onset_window: SimDuration::from_millis(100),
            retry: RetryPolicy::grpc_default(),
            barrier_timeout: None,
        }
    }

    /// Whether this specification can never inject a fault.
    pub fn is_quiet(&self) -> bool {
        self.drop_prob == 0.0
            && self.blackout_prob == 0.0
            && self.crash_prob == 0.0
            && self.straggler_prob == 0.0
            && self.ps_stall_prob == 0.0
    }

    /// Overrides the per-attempt transfer loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop_prob must be in [0,1]");
        self.drop_prob = p;
        self
    }

    /// Overrides the per-channel blackout probability and duration.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_blackouts(mut self, p: f64, duration: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "blackout_prob must be in [0,1]");
        self.blackout_prob = p;
        self.blackout = duration;
        self
    }

    /// Overrides the per-worker crash probability and downtime.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_crashes(mut self, p: f64, downtime: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "crash_prob must be in [0,1]");
        self.crash_prob = p;
        self.crash_downtime = downtime;
        self
    }

    /// Overrides the per-worker persistent-straggler probability and
    /// slowdown factor.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability or `factor < 1`.
    pub fn with_stragglers(mut self, p: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "straggler_prob must be in [0,1]");
        assert!(factor >= 1.0, "straggler_factor must be at least 1");
        self.straggler_prob = p;
        self.straggler_factor = factor;
        self
    }

    /// Overrides the per-PS stall probability and duration.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_ps_stalls(mut self, p: f64, duration: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "ps_stall_prob must be in [0,1]");
        self.ps_stall_prob = p;
        self.ps_stall = duration;
        self
    }

    /// Overrides the onset-sampling window.
    pub fn with_onset_window(mut self, window: SimDuration) -> Self {
        self.onset_window = window;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables the degraded-mode barrier at `timeout`.
    pub fn with_barrier_timeout(mut self, timeout: SimDuration) -> Self {
        self.barrier_timeout = Some(timeout);
        self
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// One channel blackout window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blackout {
    /// The affected channel.
    pub channel: ChannelId,
    /// When the channel goes dark.
    pub at: SimTime,
    /// When it comes back.
    pub until: SimTime,
}

/// One worker crash/recover cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Crash {
    /// The crashed worker.
    pub device: DeviceId,
    /// When the worker dies.
    pub at: SimTime,
    /// When it recovers.
    pub until: SimTime,
}

/// One parameter-server stall window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stall {
    /// The stalled parameter server.
    pub device: DeviceId,
    /// When the update thread wedges.
    pub at: SimTime,
    /// When it resumes.
    pub until: SimTime,
}

/// The concrete faults of one iteration, sampled from a [`FaultSpec`].
///
/// Plans compare with `==`, so tests can assert that identical
/// `(seed, iteration)` pairs produce identical plans — and, through
/// [`simulate_with_plan`], byte-identical traces.
///
/// [`simulate_with_plan`]: crate::simulate_with_plan
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Channel blackout windows.
    pub blackouts: Vec<Blackout>,
    /// Worker crash/recover cycles.
    pub crashes: Vec<Crash>,
    /// Persistent stragglers: `(worker, slowdown factor)`.
    pub stragglers: Vec<(DeviceId, f64)>,
    /// Parameter-server stall windows.
    pub stalls: Vec<Stall>,
    /// Per-attempt transfer loss probability.
    pub drop_prob: f64,
    /// Loss detection and retransmit policy.
    pub retry: RetryPolicy,
    /// Degraded-barrier release time, if enabled.
    pub barrier_timeout: Option<SimDuration>,
    /// Dedicated stream deciding which transfer attempts are lost (kept
    /// inside the plan so replaying a plan replays its drops).
    drop_rng: SmallRng,
}

impl FaultPlan {
    /// Samples the iteration's faults from `spec` for the given graph.
    ///
    /// The draw is keyed by `(seed, iteration)` on a stream separate from
    /// the engine's noise RNG, so the same arguments always yield the same
    /// plan and fault sampling never perturbs fault-free behaviour.
    pub fn sample(spec: &FaultSpec, graph: &Graph, seed: u64, iteration: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(
            seed ^ FAULT_STREAM ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let onset = |rng: &mut SmallRng, window: SimDuration| -> SimTime {
            if window.is_zero() {
                SimTime::ZERO
            } else {
                SimTime::from_nanos(rng.gen_range(0..window.as_nanos()))
            }
        };

        let mut blackouts = Vec::new();
        if spec.blackout_prob > 0.0 {
            for channel in graph.channels() {
                if rng.gen::<f64>() < spec.blackout_prob {
                    let at = onset(&mut rng, spec.onset_window);
                    blackouts.push(Blackout {
                        channel: channel.id(),
                        at,
                        until: at + spec.blackout,
                    });
                }
            }
        }

        let mut crashes = Vec::new();
        let mut stragglers = Vec::new();
        if spec.crash_prob > 0.0 || spec.straggler_prob > 0.0 {
            for device in graph.devices() {
                if !device.is_worker() {
                    continue;
                }
                if spec.crash_prob > 0.0 && rng.gen::<f64>() < spec.crash_prob {
                    let at = onset(&mut rng, spec.onset_window);
                    crashes.push(Crash {
                        device: device.id(),
                        at,
                        until: at + spec.crash_downtime,
                    });
                }
                if spec.straggler_prob > 0.0 && rng.gen::<f64>() < spec.straggler_prob {
                    stragglers.push((device.id(), spec.straggler_factor));
                }
            }
        }

        let mut stalls = Vec::new();
        if spec.ps_stall_prob > 0.0 {
            for device in graph.devices() {
                if device.is_worker() {
                    continue;
                }
                if rng.gen::<f64>() < spec.ps_stall_prob {
                    let at = onset(&mut rng, spec.onset_window);
                    stalls.push(Stall {
                        device: device.id(),
                        at,
                        until: at + spec.ps_stall,
                    });
                }
            }
        }

        Self {
            blackouts,
            crashes,
            stragglers,
            stalls,
            drop_prob: spec.drop_prob,
            retry: spec.retry,
            barrier_timeout: spec.barrier_timeout,
            drop_rng: SmallRng::seed_from_u64(rng.gen()),
        }
    }

    /// Whether this plan can inject nothing.
    pub fn is_quiet(&self) -> bool {
        self.blackouts.is_empty()
            && self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.stalls.is_empty()
            && self.drop_prob == 0.0
            && self.barrier_timeout.is_none()
    }

    /// Decides whether the next transfer attempt is lost on the wire.
    ///
    /// Forks the plan's dedicated drop stream. The engine draws loss
    /// decisions from the fork, so a plan can be borrowed (and replayed)
    /// any number of times: every fork replays the identical stream.
    pub(crate) fn drop_stream(&self) -> SmallRng {
        self.drop_rng.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{tiny_mlp, Mode};

    fn graph() -> tictac_graph::Graph {
        deploy(&tiny_mlp(Mode::Training, 8), &ClusterSpec::new(3, 2))
            .unwrap()
            .graph()
            .clone()
    }

    #[test]
    fn quiet_spec_samples_quiet_plans() {
        let g = graph();
        let plan = FaultPlan::sample(&FaultSpec::none(), &g, 1, 0);
        assert!(plan.is_quiet());
        assert!(FaultSpec::none().is_quiet());
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_iteration() {
        let g = graph();
        let spec = FaultSpec::none()
            .with_drop_prob(0.1)
            .with_blackouts(0.8, SimDuration::from_millis(5))
            .with_crashes(0.5, SimDuration::from_millis(50))
            .with_stragglers(0.5, 3.0)
            .with_ps_stalls(0.5, SimDuration::from_millis(10));
        assert!(!spec.is_quiet());
        let a = FaultPlan::sample(&spec, &g, 7, 3);
        let b = FaultPlan::sample(&spec, &g, 7, 3);
        assert_eq!(a, b);
        let c = FaultPlan::sample(&spec, &g, 7, 4);
        let d = FaultPlan::sample(&spec, &g, 8, 3);
        assert!(a != c || a != d, "different keys should differ");
    }

    #[test]
    fn certain_faults_hit_every_target() {
        let g = graph();
        let spec = FaultSpec::none()
            .with_blackouts(1.0, SimDuration::from_millis(1))
            .with_crashes(1.0, SimDuration::from_millis(1))
            .with_stragglers(1.0, 2.5)
            .with_ps_stalls(1.0, SimDuration::from_millis(1));
        let plan = FaultPlan::sample(&spec, &g, 1, 0);
        let workers = g.workers().count();
        let servers = g.parameter_servers().count();
        assert_eq!(plan.blackouts.len(), g.channels().len());
        assert_eq!(plan.crashes.len(), workers);
        assert_eq!(plan.stragglers.len(), workers);
        assert_eq!(plan.stalls.len(), servers);
        for b in &plan.blackouts {
            assert!(b.until > b.at);
            assert!(b.at.as_nanos() < spec.onset_window.as_nanos());
        }
    }

    #[test]
    fn drop_stream_replays_with_the_plan() {
        let g = graph();
        let spec = FaultSpec::none().with_drop_prob(0.5);
        let plan = FaultPlan::sample(&spec, &g, 42, 0);
        // Every fork of the stream replays the identical loss decisions,
        // so borrowing the plan across engine runs replays its drops.
        let draws = |mut rng: SmallRng| -> Vec<bool> {
            (0..64).map(|_| rng.gen::<f64>() < plan.drop_prob).collect()
        };
        assert_eq!(draws(plan.drop_stream()), draws(plan.drop_stream()));
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn rejects_invalid_drop_probability() {
        FaultSpec::none().with_drop_prob(1.5);
    }
}
