//! Discrete-event simulator of a Model-Replica + Parameter-Server cluster.
//!
//! This crate substitutes for the paper's execution substrate (TensorFlow's
//! runtime + gRPC + a real cluster). It reproduces the mechanisms the paper
//! analyses:
//!
//! * **Ready-queue policy** (§3.1): when a compute resource frees, it picks
//!   *uniformly at random* among the ready ops carrying the lowest priority
//!   number together with all unprioritized ready ops. With no schedule this
//!   yields the random parameter-transfer orders of §2.2; with a TIC/TAC
//!   schedule it enforces the chosen order.
//! * **gRPC channel semantics** (§5.1): one bidirectional channel per
//!   worker–PS pair; transfers on a channel are handed off in order and only
//!   one is in flight per channel. Device NICs serialize transfers too, so
//!   parameter-server network load grows with the number of workers — the
//!   effect behind the paper's scaling observations (§6.1).
//! * **Sender-side enforcement** (§5.1): per-channel counters; a
//!   prioritized transfer is handed to the channel only when the counter
//!   reaches its rank. An optional reorder-error probability emulates gRPC
//!   occasionally processing hand-offs out of order (0.4–0.5% in the
//!   paper's measurements).
//! * **Runtime variance**: multiplicative log-normal per-op noise and
//!   occasional whole-worker slowdowns ([`NoiseModel`]).
//!
//! * **Fault injection & fault-tolerant execution**: a seeded, fully
//!   deterministic [`FaultSpec`]/[`FaultPlan`] model (transient transfer
//!   drops, channel blackouts, worker crash/recover cycles, persistent
//!   stragglers, PS stalls) recovered by timeout-driven retransmits with
//!   exponential backoff and, optionally, a degraded-mode sync barrier
//!   that completes the iteration with the slowest workers' updates
//!   deferred. Failures that cannot be absorbed surface as typed
//!   [`SimError`]s via [`try_simulate`].
//!
//! The simulator consumes the partitioned [`Graph`] built by
//! `tictac-cluster`, a [`Schedule`] from `tictac-sched`, and produces an
//! [`ExecutionTrace`] per iteration plus [`IterationMetrics`].
//!
//! [`NoiseModel`]: tictac_timing::NoiseModel
//! [`Schedule`]: tictac_sched::Schedule
//! [`ExecutionTrace`]: tictac_trace::ExecutionTrace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod config;
mod engine;
mod error;
mod metrics;
mod par;

pub use config::{SimConfig, DEFAULT_PAR_THRESHOLD, DEFAULT_SEED};
pub use engine::{
    selected_engine, simulate, simulate_with_plan, simulate_with_plan_observed, try_simulate,
    try_simulate_observed, EngineChoice,
};
pub use error::SimError;
// The fault model lives in the backend-agnostic `tictac-faults` crate
// (the threaded runtime samples the same plans); re-exported here so the
// simulator's API is unchanged.
pub use metrics::{FaultCounters, IterationMetrics};
pub use tictac_faults::{Blackout, Crash, FaultClock, FaultPlan, FaultSpec, Stall};
