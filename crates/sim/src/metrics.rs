//! Per-iteration metrics derived from execution traces.

use serde::{Deserialize, Serialize};
use tictac_graph::{DeviceId, Graph};
use tictac_timing::{SimDuration, SimTime};
use tictac_trace::ExecutionTrace;

/// Summary of one simulated iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationMetrics {
    /// The iteration makespan (all ops, including the PS update tail).
    pub makespan: SimDuration,
    /// Per-worker finish times (completion of the worker's last op), in
    /// worker order.
    pub worker_finish: Vec<SimTime>,
    /// Straggler time as a percentage of the iteration (§6.3): the longest
    /// any worker waited for the slowest worker, over the makespan.
    pub straggler_pct: f64,
}

impl IterationMetrics {
    /// Throughput in samples/second for a global batch of
    /// `batch_per_worker × workers`.
    pub fn throughput(&self, batch_per_worker: usize, workers: usize) -> f64 {
        (batch_per_worker * workers) as f64 / self.makespan.as_secs_f64()
    }
}

/// Computes the straggler percentage from per-worker finish times and the
/// iteration makespan: `max_w (barrier − finish_w) / makespan × 100`, where
/// the barrier is the slowest worker's finish.
pub fn straggler_pct(worker_finish: &[SimTime], makespan: SimDuration) -> f64 {
    if worker_finish.len() < 2 || makespan.is_zero() {
        return 0.0;
    }
    let barrier = worker_finish
        .iter()
        .copied()
        .max()
        .expect("non-empty worker list");
    let max_wait = worker_finish
        .iter()
        .map(|&f| barrier - f)
        .max()
        .expect("non-empty worker list");
    100.0 * max_wait.as_secs_f64() / makespan.as_secs_f64()
}

/// Derives iteration metrics from a trace.
///
/// `workers` are the worker devices, in worker-index order.
pub fn analyze(graph: &Graph, workers: &[DeviceId], trace: &ExecutionTrace) -> IterationMetrics {
    let worker_finish: Vec<SimTime> = workers
        .iter()
        .map(|&w| trace.device_finish(graph, w).unwrap_or(SimTime::ZERO))
        .collect();
    IterationMetrics {
        makespan: trace.makespan(),
        straggler_pct: straggler_pct(&worker_finish, trace.makespan()),
        worker_finish,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_sched::no_ordering;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn straggler_math() {
        let makespan = SimDuration::from_nanos(1000);
        // Fastest finishes at 400, slowest at 900: wait = 500 = 50%.
        assert_eq!(straggler_pct(&[t(900), t(400)], makespan), 50.0);
        // Identical workers: no straggling.
        assert_eq!(straggler_pct(&[t(700), t(700)], makespan), 0.0);
        // Single worker: straggling undefined, reported as zero.
        assert_eq!(straggler_pct(&[t(900)], makespan), 0.0);
    }

    #[test]
    fn analyze_extracts_worker_finishes() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(3, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let trace = simulate(d.graph(), &no_ordering(d.graph()), &cfg, 0);
        let m = analyze(d.graph(), d.workers(), &trace);
        assert_eq!(m.worker_finish.len(), 3);
        assert!(m.worker_finish.iter().all(|&f| f > SimTime::ZERO));
        assert!(m.makespan >= m.worker_finish.iter().copied().max().unwrap() - t(0));
        assert!(m.straggler_pct >= 0.0 && m.straggler_pct <= 100.0);
        let tput = m.throughput(8, 3);
        assert!(tput > 0.0);
    }
}
