//! Per-iteration metrics derived from execution traces.
//!
//! The metric types live in `tictac-trace` (they depend only on the graph,
//! timing and trace layers, so non-simulator backends can reuse them); this
//! module re-exports the *types* for compatibility. The `analyze` /
//! `straggler_pct` function re-exports were removed — call
//! `tictac_trace::analyze` directly.

pub use tictac_trace::{FaultCounters, IterationMetrics};

#[cfg(test)]
mod tests {
    use crate::{simulate, SimConfig};
    use tictac_cluster::{deploy, ClusterSpec};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_sched::no_ordering;
    use tictac_timing::SimTime;
    use tictac_trace::analyze;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn analyze_extracts_worker_finishes() {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(3, 1)).unwrap();
        let cfg = SimConfig::cloud_gpu();
        let trace = simulate(d.graph(), &no_ordering(d.graph()), &cfg, 0);
        let m = analyze(d.graph(), d.workers(), &trace);
        assert_eq!(m.worker_finish.len(), 3);
        assert!(m.worker_finish.iter().all(|&f| f > SimTime::ZERO));
        assert!(m.makespan >= m.worker_finish.iter().copied().max().unwrap() - t(0));
        assert!(m.straggler_pct >= 0.0 && m.straggler_pct <= 100.0);
        let tput = m.throughput(8, 3);
        assert!(tput > 0.0);
        // A fault-free run is clean with full goodput.
        assert!(m.faults.is_clean());
        assert_eq!(m.goodput_pct, 100.0);
    }
}
