//! Conservatively partitioned parallel discrete-event engine.
//!
//! Exploits the independence structure of PS deployments: every
//! worker↔PS channel is an independent FIFO, and all transfer ops of a
//! channel execute on the channel's *worker* side. The event space is
//! partitioned per device — a worker partition owns its device plus
//! every channel attached to it (so all send/recv ops of those channels
//! are homed there), a PS partition owns just its compute timeline. The
//! only cross-partition dependencies left are the two seams of the PS
//! protocol:
//!
//! * PS read done → param send becomes ready (PS partition → worker),
//! * grad recv done → aggregate becomes ready (worker partition → PS).
//!
//! Both are delivered as timestamped *dispatch messages* between rounds
//! of a lower-bound-timestamp (LBTS) barrier. Each round the coordinator
//! computes, per partition class, the earliest instant any opposite-class
//! partition could still emit a message — its next pending work, plus
//! its *lookahead*: a PS cannot emit sooner than its minimum compute
//! duration after consuming a message, a worker cannot emit sooner than
//! its minimum in-flight transfer completion (the per-channel FIFO
//! lookahead). Every partition then processes its own events strictly
//! below that bound, in parallel, with no rollbacks (classic
//! conservative/CMB synchronization). A floor of `m + 1` — one past the
//! globally minimal pending timestamp — guarantees progress every round
//! even when lookaheads are zero.
//!
//! Determinism: partitions are isolated (their state is disjoint; the
//! only shared mutable state is the atomic indegree/ready-time arrays,
//! whose `fetch_max`-before-`fetch_sub` protocol makes the dispatch time
//! of a join node independent of which predecessor decrements last), and
//! message queues order by `(time, op id)` — so results are identical
//! run-to-run and independent of `TICTAC_THREADS`.
//!
//! Equivalence: under the eligibility gate (deterministic timing, quiet
//! faults, disorder window 1) the sequential oracle makes no
//! behavior-affecting RNG draws, and this engine reproduces its
//! semantics exactly except for the ordering of *simultaneous*
//! cross-partition completions, which can permute same-instant ready
//! queues. Such permutations preserve `IterationMetrics` and every
//! analyzer output (busy unions, sums and makespans are order-free);
//! `tests/par_equivalence.rs` pins seq-vs-par equivalence at that level
//! across the zoo and by proptest.

use crate::arena::CalendarQueue;
use crate::config::SimConfig;
use crate::engine::{enforcement_ranks, ChanQueue, ReadyQueue};
use crate::error::SimError;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use tictac_graph::{Graph, OpId, OpKind};
use tictac_sched::Schedule;
use tictac_timing::{CostOracle, NoiseModel, SimTime, TimeOracle};
use tictac_trace::{ExecutionTrace, TraceBuilder};

/// Whether `(graph, config)` is eligible for the parallel engine: at
/// least `par_threshold` workers and a workload whose sequential
/// semantics are deterministic (no noise, no reorder error, disorder
/// window 1, quiet fault spec) on a pure worker↔PS topology whose only
/// cross-device edges are the two PS-protocol seams.
pub(crate) fn eligible(graph: &Graph, config: &SimConfig) -> bool {
    let Some(threshold) = config.par_threshold else {
        return false;
    };
    config.noise == NoiseModel::none()
        && config.reorder_error == 0.0
        && config.disorder_window == Some(1)
        && config.faults.is_quiet()
        && config.faults.barrier_timeout.is_none()
        && graph.workers().count() >= threshold.max(1)
        // Heterogeneous device speeds / link bandwidths are sequential-only:
        // the partitioned engine's lookahead assumes uniform wire time.
        && graph.is_uniform()
        && supported_graph(graph)
}

/// The partition an op is homed on: transfer ops live with their
/// channel's worker endpoint; everything else with its device.
fn home_of(graph: &Graph, op: OpId) -> usize {
    let o = graph.op(op);
    match o.kind().channel() {
        Some(ch) => graph.channel(ch).worker().index(),
        None => o.device().index(),
    }
}

/// Validates the partitioning assumptions in one `O(V + E + C)` pass:
/// worker↔PS channels only, and every cross-partition edge is either
/// "PS compute → worker-homed send" or "worker-homed recv → PS compute".
fn supported_graph(graph: &Graph) -> bool {
    for ch in graph.channels() {
        if ch.is_peer()
            || !graph.device(ch.worker()).is_worker()
            || !graph.device(ch.ps()).is_parameter_server()
        {
            return false;
        }
    }
    for i in 0..graph.len() {
        let op = OpId::from_index(i);
        let o = graph.op(op);
        let h = home_of(graph, op);
        for &succ in graph.succs(op) {
            if home_of(graph, succ) == h {
                continue;
            }
            let s = graph.op(succ);
            let ok = match s.kind() {
                // Param push: the emitter must be PS-side compute.
                OpKind::Send { .. } => {
                    o.kind().channel().is_none() && graph.device(o.device()).is_parameter_server()
                }
                // Grad delivery: recv feeding PS-side compute.
                _ => {
                    o.is_recv()
                        && s.kind().channel().is_none()
                        && graph.device(s.device()).is_parameter_server()
                }
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Immutable state shared by all partitions, plus the atomic
/// cross-partition dependency counters.
struct Shared<'g> {
    graph: &'g Graph,
    schedule: &'g Schedule,
    oracle: CostOracle,
    enforcement: bool,
    share: f64,
    /// Op → owning partition (device index).
    home: Vec<u32>,
    /// Channel → local index within its owner's `channels` vec.
    chan_local: Vec<u32>,
    /// Send-side enforcement ranks (see [`enforcement_ranks`]).
    rank: Vec<Option<u64>>,
    /// Rank propagated to the recv side (for rank-aware channel pops).
    recv_rank: Vec<Option<u64>>,
    /// The send op feeding each recv (trace mirroring).
    send_of: Vec<Option<OpId>>,
    /// Remaining unsatisfied predecessors per op.
    indegree: Vec<AtomicU32>,
    /// Latest predecessor completion time per op (ns). `fetch_max`ed
    /// *before* the indegree decrement, so whichever predecessor
    /// decrements last observes the true max readiness time.
    ready_at: Vec<AtomicU64>,
}

/// One owned channel's runtime state (mirrors the sequential engine's
/// per-channel arrays, restricted to the owner partition).
#[derive(Debug, Default)]
struct ChannelState {
    busy: bool,
    /// The transfer in flight and its start time.
    inflight: Option<(OpId, SimTime)>,
    /// §5.1 sender-side enforcement counter.
    counter: u64,
    /// Blocked prioritized sends, keyed by rank.
    blocked: BTreeMap<u64, OpId>,
    queue: ChanQueue,
}

/// One partition: a device's compute timeline plus (for workers) its
/// channels, with a private event calendar and an inter-partition inbox.
struct Part {
    id: u32,
    clock: SimTime,
    /// Private pending events; payload is `(op << 1) | is_transfer`.
    events: CalendarQueue,
    seq: u64,
    /// Incoming dispatch messages `(ready_at_ns, op)`, min-ordered by
    /// `(time, op id)` so arrival order never affects processing order.
    inbox: BinaryHeap<Reverse<(u64, u32)>>,
    ready: ReadyQueue,
    busy: bool,
    started_compute: SimTime,
    /// Owned channels, in ascending global channel index (pump order);
    /// `Shared::chan_local` maps a global channel index to its slot.
    channels: Vec<ChannelState>,
    /// Outgoing messages `(target partition, ready_at_ns, op)`.
    outbox: Vec<(u32, u64, u32)>,
    /// Completed-op intervals, in completion order (mirrored sends
    /// directly after their recv, as the sequential engine records them).
    records: Vec<(OpId, SimTime, SimTime)>,
    completed: usize,
    /// Minimum delay from consuming a message to emitting one (ns).
    lookahead: u64,
    /// Cached queue minima, maintained at round boundaries.
    next_event_at: u64,
    next_inbox_at: u64,
}

impl Part {
    fn schedule(&mut self, at: u64, payload: u32) {
        self.seq += 1;
        self.events.push(at, self.seq, payload);
    }

    /// Routes an op whose dependencies are all satisfied (the sequential
    /// engine's `dispatch`, restricted to this partition).
    fn dispatch(&mut self, sh: &Shared, op: OpId) {
        match sh.graph.op(op).kind() {
            OpKind::Send { .. } => self.try_handoff(sh, op),
            OpKind::Recv { .. } => {
                let ch = sh
                    .graph
                    .op(op)
                    .kind()
                    .channel()
                    .expect("recv has a channel");
                let local = sh.chan_local[ch.index()] as usize;
                self.channels[local]
                    .queue
                    .push(op, sh.recv_rank[op.index()]);
            }
            _ => self.ready.push(op, sh.schedule.priority(op)),
        }
    }

    /// Sender-side enforcement (§5.1): a ranked transfer is handed to
    /// the channel only when its counter reaches its rank.
    fn try_handoff(&mut self, sh: &Shared, send: OpId) {
        let ch = sh
            .graph
            .op(send)
            .kind()
            .channel()
            .expect("send has a channel");
        let local = sh.chan_local[ch.index()] as usize;
        match sh.rank[send.index()] {
            Some(r) if sh.enforcement && self.channels[local].counter != r => {
                self.channels[local].blocked.insert(r, send);
            }
            _ => self.complete_send(sh, send),
        }
    }

    /// Completes a send (instantaneous hand-off), bumps the enforcement
    /// counter and releases newly-unblocked sends on the same channel.
    fn complete_send(&mut self, sh: &Shared, send: OpId) {
        let mut stack = vec![send];
        while let Some(s) = stack.pop() {
            self.mark_done(sh, s);
            if let Some(r) = sh.rank[s.index()] {
                if sh.enforcement {
                    let ch = sh.graph.op(s).kind().channel().expect("send has a channel");
                    let local = sh.chan_local[ch.index()] as usize;
                    debug_assert_eq!(self.channels[local].counter, r);
                    self.channels[local].counter += 1;
                    let next = self.channels[local].counter;
                    if let Some(op) = self.channels[local].blocked.remove(&next) {
                        stack.push(op);
                    }
                }
            }
        }
    }

    /// Marks an op complete; local successors dispatch inline, remote
    /// ones become outbox messages carrying their max readiness time.
    fn mark_done(&mut self, sh: &Shared, op: OpId) {
        self.completed += 1;
        let t = self.clock.as_nanos();
        for k in 0..sh.graph.succs(op).len() {
            let succ = sh.graph.succs(op)[k];
            let i = succ.index();
            // Publish our completion time *before* decrementing, so the
            // final decrementer (whoever it is) reads the true maximum.
            sh.ready_at[i].fetch_max(t, Ordering::SeqCst);
            if sh.indegree[i].fetch_sub(1, Ordering::SeqCst) == 1 {
                let ready = sh.ready_at[i].load(Ordering::SeqCst);
                let target = sh.home[i];
                if target == self.id && ready <= t {
                    self.dispatch(sh, succ);
                } else if target == self.id {
                    // A remote predecessor finished later (in sim time)
                    // than us: defer to our own timeline.
                    self.inbox.push(Reverse((ready, i as u32)));
                } else {
                    self.outbox.push((target, ready, i as u32));
                }
            }
        }
    }

    /// Starts the next compute op if the device is idle. Window-1 pick:
    /// the earliest-pushed candidate (the gate guarantees the sequential
    /// engine's draw resolves to index 0 too).
    fn try_start_compute(&mut self, sh: &Shared) -> bool {
        if self.busy || self.ready.is_empty() {
            return false;
        }
        let op = self.ready.take_candidate(0);
        self.busy = true;
        self.started_compute = self.clock;
        let dur = sh.oracle.duration(sh.graph, op);
        let end = self.clock + dur;
        self.schedule(end.as_nanos(), (op.index() as u32) << 1);
        true
    }

    /// Starts the next transfer on every idle owned channel, in channel
    /// index order (matching the sequential engine's global sweep).
    fn try_start_transfers(&mut self, sh: &Shared) -> bool {
        let mut progressed = false;
        for local in 0..self.channels.len() {
            if self.channels[local].busy || self.channels[local].queue.is_empty() {
                continue;
            }
            let recv = if self.channels[local].queue.has_ranked() {
                self.channels[local].queue.pop_min_rank()
            } else {
                self.channels[local].queue.pop_live_index(0)
            };
            self.channels[local].busy = true;
            self.channels[local].inflight = Some((recv, self.clock));
            let bytes = sh.graph.op(recv).cost().bytes;
            let dur = sh.oracle.platform().transfer_time_shared(bytes, sh.share);
            let end = self.clock + dur;
            self.schedule(end.as_nanos(), ((recv.index() as u32) << 1) | 1);
            progressed = true;
        }
        progressed
    }

    /// Runs all synchronous starts enabled by the current state.
    fn pump(&mut self, sh: &Shared) {
        loop {
            let mut progressed = self.try_start_compute(sh);
            progressed |= self.try_start_transfers(sh);
            if !progressed {
                break;
            }
        }
    }

    fn handle(&mut self, sh: &Shared, payload: u32) {
        let op = OpId::from_index((payload >> 1) as usize);
        if payload & 1 == 1 {
            // TransferDone.
            let ch = sh.graph.op(op).kind().channel().expect("recv channel");
            let local = sh.chan_local[ch.index()] as usize;
            let (recv, start) = self.channels[local]
                .inflight
                .take()
                .expect("transfer in flight");
            debug_assert_eq!(recv, op);
            self.channels[local].busy = false;
            self.records.push((op, start, self.clock));
            // Attribute the same interval to the sending end, exactly as
            // the sequential engine does.
            if let Some(send) = sh.send_of[op.index()] {
                self.records.push((send, start, self.clock));
            }
            self.mark_done(sh, op);
        } else {
            // ComputeDone.
            self.busy = false;
            self.records.push((op, self.started_compute, self.clock));
            self.mark_done(sh, op);
        }
    }

    /// Processes everything (events and inbox messages, merged by time
    /// with messages first at ties) strictly below `bound`, then
    /// refreshes the cached minima the coordinator reads.
    fn run_round(&mut self, sh: &Shared, bound: u64) {
        loop {
            let ev = self.events.peek_min();
            let msg = self.inbox.peek().map(|&Reverse(m)| m);
            let take_msg = match (ev, msg) {
                (None, None) => break,
                (Some((ea, ..)), Some((ma, _))) => ma <= ea,
                (None, Some(_)) => true,
                (Some(_), None) => false,
            };
            if take_msg {
                let (at, op) = msg.expect("message peeked");
                if at >= bound {
                    break;
                }
                self.inbox.pop();
                self.clock = SimTime::from_nanos(at);
                self.dispatch(sh, OpId::from_index(op as usize));
            } else {
                let (at, _, payload) = ev.expect("event peeked");
                if at >= bound {
                    break;
                }
                self.events.pop_min();
                self.clock = SimTime::from_nanos(at);
                self.handle(sh, payload);
            }
            self.pump(sh);
        }
        self.next_event_at = self.events.peek_min().map_or(u64::MAX, |(at, ..)| at);
        self.next_inbox_at = self.inbox.peek().map_or(u64::MAX, |&Reverse((at, _))| at);
    }
}

/// Worker threads for the round loop: `TICTAC_THREADS` override, else
/// available parallelism, capped by the partition count (the same policy
/// as `tictac-bench`'s `parallel_map`).
fn thread_count(partitions: usize) -> usize {
    std::env::var("TICTAC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(partitions)
        .max(1)
}

/// Simulates one iteration on the partitioned engine.
///
/// Callers must have checked [`eligible`]; the fault plan is quiet by
/// construction, so no faults, noise or RNG draws are involved and the
/// result is identical for every iteration index.
pub(crate) fn simulate_par(
    graph: &Graph,
    schedule: &Schedule,
    config: &SimConfig,
) -> Result<ExecutionTrace, SimError> {
    debug_assert!(eligible(graph, config));
    let n = graph.len();
    let parts_n = graph.devices().len();
    let oracle = CostOracle::new(config.platform.clone());

    let share = config.bandwidth_share_override.unwrap_or_else(|| {
        let workers = graph.workers().count();
        let servers = graph.parameter_servers().count();
        workers.max(servers).max(1) as f64
    });

    let home: Vec<u32> = (0..n)
        .map(|i| home_of(graph, OpId::from_index(i)) as u32)
        .collect();
    let rank = enforcement_ranks(graph, schedule);

    // Recv→send pairing and recv-side ranks, precomputed (the sequential
    // engine derives them lazily at dispatch).
    let mut recv_rank: Vec<Option<u64>> = vec![None; n];
    let mut send_of: Vec<Option<OpId>> = vec![None; n];
    for i in 0..n {
        let op = OpId::from_index(i);
        if !graph.op(op).is_recv() {
            continue;
        }
        let send = graph
            .preds(op)
            .iter()
            .copied()
            .find(|&p| graph.op(p).kind().is_send());
        send_of[i] = send;
        recv_rank[i] = send.and_then(|s| rank[s.index()]).or(rank[i]);
    }

    // Channel ownership: ascending channel index per owner.
    let mut chan_local = vec![0u32; graph.channels().len()];
    let mut chan_ids: Vec<Vec<u32>> = vec![Vec::new(); parts_n];
    for ch in graph.channels() {
        let owner = ch.worker().index();
        chan_local[ch.id().index()] = chan_ids[owner].len() as u32;
        chan_ids[owner].push(ch.id().index() as u32);
    }

    // Per-partition lookahead: workers can only emit after an in-flight
    // transfer completes (min transfer duration over owned recvs); PS
    // partitions after a compute completes (min compute duration).
    let mut lookahead = vec![u64::MAX; parts_n];
    for (i, &h) in home.iter().enumerate().take(n) {
        let op = OpId::from_index(i);
        let o = graph.op(op);
        let h = h as usize;
        match o.kind() {
            OpKind::Recv { .. } => {
                let d = oracle
                    .platform()
                    .transfer_time_shared(o.cost().bytes, share)
                    .as_nanos();
                lookahead[h] = lookahead[h].min(d);
            }
            OpKind::Send { .. } => {}
            _ => {
                if graph.device(o.device()).is_parameter_server() {
                    let d = oracle.duration(graph, op).as_nanos();
                    lookahead[h] = lookahead[h].min(d);
                }
            }
        }
    }
    let is_ps: Vec<bool> = graph
        .devices()
        .iter()
        .map(|d| d.is_parameter_server())
        .collect();
    let class_lookahead = |ps: bool| {
        (0..parts_n)
            .filter(|&p| is_ps[p] == ps)
            .map(|p| lookahead[p])
            .min()
            .unwrap_or(u64::MAX)
    };
    let lw = class_lookahead(false);
    let lp = class_lookahead(true);

    let shared = Shared {
        graph,
        schedule,
        oracle,
        enforcement: config.enforcement,
        share,
        home,
        chan_local,
        rank,
        recv_rank,
        send_of,
        indegree: (0..n)
            .map(|i| AtomicU32::new(graph.preds(OpId::from_index(i)).len() as u32))
            .collect(),
        ready_at: (0..n).map(|_| AtomicU64::new(0)).collect(),
    };

    let mut parts: Vec<Part> = (0..parts_n)
        .map(|p| Part {
            id: p as u32,
            clock: SimTime::ZERO,
            events: CalendarQueue::new(),
            seq: 0,
            inbox: BinaryHeap::new(),
            ready: ReadyQueue::default(),
            busy: false,
            started_compute: SimTime::ZERO,
            channels: (0..chan_ids[p].len())
                .map(|_| ChannelState::default())
                .collect(),
            outbox: Vec::new(),
            records: Vec::new(),
            completed: 0,
            lookahead: lookahead[p],
            next_event_at: u64::MAX,
            next_inbox_at: u64::MAX,
        })
        .collect();

    // Dispatch roots (op id order, as the sequential engine does) and
    // run the initial synchronous starts.
    for i in 0..n {
        if shared.indegree[i].load(Ordering::Relaxed) == 0 {
            parts[shared.home[i] as usize].dispatch(&shared, OpId::from_index(i));
        }
    }
    for part in &mut parts {
        part.pump(&shared);
        part.next_event_at = part.events.peek_min().map_or(u64::MAX, |(at, ..)| at);
    }

    // Heaviest partitions first so the work-stealing claim order packs
    // threads well (LPT); ties (all symmetric workers) by index.
    let mut load = vec![0usize; parts_n];
    for &h in &shared.home {
        load[h as usize] += 1;
    }
    let mut order: Vec<u32> = (0..parts_n as u32).collect();
    order.sort_by_key(|&p| (Reverse(load[p as usize]), p));

    let parts: Vec<Mutex<Part>> = parts.into_iter().map(Mutex::new).collect();
    let bounds: Vec<AtomicU64> = (0..parts_n).map(|_| AtomicU64::new(0)).collect();
    let threads = thread_count(parts_n);
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    let next_idx = AtomicUsize::new(0);

    let run = std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                barrier.wait();
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                loop {
                    let k = next_idx.fetch_add(1, Ordering::SeqCst);
                    if k >= order.len() {
                        break;
                    }
                    let p = order[k] as usize;
                    let bound = bounds[p].load(Ordering::SeqCst);
                    parts[p]
                        .lock()
                        .expect("partition lock")
                        .run_round(&shared, bound);
                }
                barrier.wait();
            });
        }

        let mut last_m = 0u64;
        let outcome = loop {
            // Deliver last round's messages.
            let mut mail: Vec<(u32, u64, u32)> = Vec::new();
            for mx in &parts {
                let mut part = mx.lock().expect("partition lock");
                mail.append(&mut part.outbox);
            }
            for (target, at, op) in mail {
                let mut part = parts[target as usize].lock().expect("partition lock");
                part.inbox.push(Reverse((at, op)));
                part.next_inbox_at = part.next_inbox_at.min(at);
            }

            // LBTS: the earliest instant each class could still emit.
            let (mut w0, mut p0, mut m) = (u64::MAX, u64::MAX, u64::MAX);
            let mut completed = 0usize;
            for mx in &parts {
                let part = mx.lock().expect("partition lock");
                completed += part.completed;
                m = m.min(part.next_event_at.min(part.next_inbox_at));
                let eot = part
                    .next_event_at
                    .min(part.next_inbox_at.saturating_add(part.lookahead));
                if is_ps[part.id as usize] {
                    p0 = p0.min(eot);
                } else {
                    w0 = w0.min(eot);
                }
            }
            if completed == n {
                break Ok(());
            }
            if m == u64::MAX {
                break Err(SimError::Deadlock {
                    completed,
                    remaining: n - completed,
                    at: SimTime::from_nanos(last_m),
                });
            }
            // Close the transitive loop: a PS may also emit in response
            // to a future worker message (and vice versa).
            let p_star = p0.min(w0.saturating_add(lp));
            let w_star = w0.min(p0.saturating_add(lw));
            let floor = m.saturating_add(1);
            for (p, b) in bounds.iter().enumerate() {
                let class_bound = if is_ps[p] { w_star } else { p_star };
                b.store(class_bound.max(floor), Ordering::SeqCst);
            }
            last_m = m;

            next_idx.store(0, Ordering::SeqCst);
            barrier.wait(); // release workers
            barrier.wait(); // join workers
        };
        stop.store(true, Ordering::SeqCst);
        barrier.wait();
        outcome
    });
    run?;

    let mut builder = TraceBuilder::new(n);
    for mx in &parts {
        let part = mx.lock().expect("partition lock");
        for &(op, start, end) in &part.records {
            // `is_recorded` guards shared sends (one send feeding
            // several recvs in hand-built graphs), as the sequential
            // engine's TraceBuilder does.
            if !builder.is_recorded(op) {
                builder.record(op, start, end);
            }
        }
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{selected_engine, simulate, EngineChoice};
    use tictac_cluster::{deploy, ClusterSpec, DeployedModel};
    use tictac_models::{tiny_mlp, Mode};
    use tictac_sched::no_ordering;
    use tictac_timing::Platform;
    use tictac_trace::analyze;

    fn par_config() -> SimConfig {
        SimConfig::deterministic(Platform::cloud_gpu()).with_disorder_window(Some(1))
    }

    fn zoo_deploy(workers: usize, ps: usize) -> DeployedModel {
        deploy(&tiny_mlp(Mode::Training, 4), &ClusterSpec::new(workers, ps)).unwrap()
    }

    #[test]
    fn eligibility_gate() {
        let d = zoo_deploy(4, 2);
        let g = d.graph();
        let base = par_config();
        // Below threshold (4 < 64): sequential.
        assert_eq!(selected_engine(g, &base), EngineChoice::Sequential);
        let forced = base.clone().with_par_threshold(Some(2));
        assert_eq!(selected_engine(g, &forced), EngineChoice::Parallel);
        // Each non-deterministic knob pins the oracle.
        assert_eq!(
            selected_engine(g, &forced.clone().with_par_threshold(None)),
            EngineChoice::Sequential
        );
        assert_eq!(
            selected_engine(g, &forced.clone().with_disorder_window(Some(32))),
            EngineChoice::Sequential
        );
        assert_eq!(
            selected_engine(g, &forced.clone().with_reorder_error(0.01)),
            EngineChoice::Sequential
        );
        assert_eq!(
            selected_engine(g, &SimConfig::cloud_gpu().with_par_threshold(Some(2))),
            EngineChoice::Sequential,
            "noisy presets stay sequential"
        );
    }

    #[test]
    fn matches_sequential_metrics_on_a_small_cluster() {
        let d = zoo_deploy(4, 2);
        let g = d.graph();
        let schedule = no_ordering(g);
        let config = par_config().with_par_threshold(Some(2));
        let seq = simulate(g, &schedule, &config.clone().with_par_threshold(None), 0);
        let par = simulate_par(g, &schedule, &config).unwrap();
        assert_eq!(par.makespan(), seq.makespan());
        assert_eq!(analyze(g, d.workers(), &par), analyze(g, d.workers(), &seq));
    }

    #[test]
    fn deterministic_across_runs() {
        let d = zoo_deploy(6, 3);
        let g = d.graph();
        let schedule = no_ordering(g);
        let config = par_config().with_par_threshold(Some(2));
        let a = simulate_par(g, &schedule, &config).unwrap();
        let b = simulate_par(g, &schedule, &config).unwrap();
        assert_eq!(a, b);
    }
}
