//! Simulator invariants over realistic deployments of the model zoo.

use tictac_cluster::{deploy, deploy_all_reduce, ClusterSpec};
use tictac_models::{Mode, Model};
use tictac_sched::no_ordering;
use tictac_sim::{simulate, SimConfig};
use tictac_timing::SimTime;
use tictac_trace::analyze;

#[test]
fn every_model_simulates_to_completion_on_a_multi_ps_cluster() {
    let config = SimConfig::cloud_gpu();
    for model in Model::ALL {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = deploy(&graph, &ClusterSpec::new(4, 2)).expect("valid cluster");
        let trace = simulate(deployed.graph(), &no_ordering(deployed.graph()), &config, 0);
        assert_eq!(
            trace.executed_ops(),
            deployed.graph().len(),
            "{model}: ops lost"
        );
        let metrics = analyze(deployed.graph(), deployed.workers(), &trace);
        assert!(metrics.makespan.as_nanos() > 0, "{model}");
        assert!(
            metrics.worker_finish.iter().all(|&f| f > SimTime::ZERO),
            "{model}"
        );
    }
}

#[test]
fn enforced_schedules_complete_on_multi_ps_clusters() {
    // Priorities are normalized per channel; with 2 PS the per-channel
    // counters must still release every transfer (no deadlock).
    let config = SimConfig::cloud_gpu();
    for model in [Model::InceptionV2, Model::Vgg19] {
        let graph = model.build_with_batch(Mode::Training, 2);
        let deployed = deploy(&graph, &ClusterSpec::new(3, 2)).expect("valid cluster");
        let g = deployed.graph();
        let schedule = deployed.replicate_schedule(&tictac_sched::tic(g, deployed.workers()[0]));
        let trace = simulate(g, &schedule, &config, 0);
        assert_eq!(trace.executed_ops(), g.len(), "{model}");
    }
}

#[test]
fn transfers_never_overlap_on_any_channel() {
    let config = SimConfig::cloud_gpu();
    let graph = Model::InceptionV1.build_with_batch(Mode::Training, 2);
    let deployed = deploy(&graph, &ClusterSpec::new(2, 2)).expect("valid cluster");
    let g = deployed.graph();
    let trace = simulate(g, &no_ordering(g), &config, 5);
    for channel in g.channels() {
        let mut intervals: Vec<(u64, u64)> = g
            .recv_ops()
            .into_iter()
            .filter(|&r| g.op(r).kind().channel() == Some(channel.id()))
            .filter_map(|r| trace.record(r))
            .map(|r| (r.start.as_nanos(), r.end.as_nanos()))
            .collect();
        intervals.sort_unstable();
        for pair in intervals.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "channel {channel}: {pair:?}");
        }
    }
}

#[test]
fn ring_allreduce_respects_per_link_serialization() {
    let config = SimConfig::cloud_gpu();
    let graph = Model::InceptionV1.build_with_batch(Mode::Training, 2);
    let ring = deploy_all_reduce(&graph, 4).expect("valid ring");
    let g = ring.graph();
    let trace = simulate(g, &no_ordering(g), &config, 0);
    assert_eq!(trace.executed_ops(), g.len());
    for &link in ring.ring() {
        let mut intervals: Vec<(u64, u64)> = g
            .recv_ops()
            .into_iter()
            .filter(|&r| g.op(r).kind().channel() == Some(link))
            .filter_map(|r| trace.record(r))
            .map(|r| (r.start.as_nanos(), r.end.as_nanos()))
            .collect();
        intervals.sort_unstable();
        for pair in intervals.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "link overlap: {pair:?}");
        }
    }
}

#[test]
fn more_workers_scale_aggregate_throughput_sublinearly() {
    // Total throughput rises with workers, but per-worker throughput falls
    // once the shared PS links saturate.
    let config = SimConfig::cloud_gpu();
    let graph = Model::ResNet50V1.build_with_batch(Mode::Training, 8);
    let mut iteration_time = Vec::new();
    for workers in [1usize, 4, 16] {
        let deployed =
            deploy(&graph, &ClusterSpec::new(workers, (workers / 4).max(1))).expect("valid");
        let trace = simulate(deployed.graph(), &no_ordering(deployed.graph()), &config, 0);
        iteration_time.push(trace.makespan().as_secs_f64());
    }
    // Iterations get slower as contention grows…
    assert!(iteration_time[0] < iteration_time[1]);
    assert!(iteration_time[1] < iteration_time[2]);
    // …but not proportionally to the worker count (that would mean zero
    // parallel benefit).
    assert!(iteration_time[2] < 16.0 * iteration_time[0]);
}

#[test]
fn disorder_window_bounds_queue_jumping() {
    // With window 1 the baseline pops strictly in readiness order: the
    // recv completion order must equal the hand-off order every run.
    let config = SimConfig::cloud_gpu().with_disorder_window(Some(1));
    let graph = Model::AlexNetV2.build_with_batch(Mode::Inference, 2);
    let deployed = deploy(&graph, &ClusterSpec::new(1, 1)).expect("valid cluster");
    let g = deployed.graph();
    let w = deployed.workers()[0];
    let a = simulate(g, &no_ordering(g), &config, 0).recv_completion_order(g, w);
    let b = simulate(g, &no_ordering(g), &config, 1).recv_completion_order(g, w);
    assert_eq!(a, b, "window 1 must be deterministic");
}
