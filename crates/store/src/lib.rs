//! `tictac-store` — the versioned, append-only run store and its
//! cross-run analytics.
//!
//! The reproduction's experiments used to print their evidence into flat
//! `results/*.txt` files and forget it; this crate is where observations
//! go to *accumulate*. Every `Session`, `repro` experiment and `bench`
//! invocation can emit a schema-versioned [`RunRecord`] — the run's
//! identity (model fingerprint, cluster shape, scheduler/backend, seed,
//! fault-spec fingerprint, provenance) joined with its observed evidence
//! (per-iteration makespans, realized efficiency, inversion counts,
//! fault counters, the metrics snapshot) — appended as one strict JSONL
//! line to a [`RunStore`].
//!
//! Three design rules keep the corpus trustworthy:
//!
//! 1. **Strict schema** ([`record`]): canonical field order, exact key
//!    sets, version tag first; decoding anything else is an error, and
//!    `encode(decode(x)) == x` byte-for-byte.
//! 2. **The sink seam** ([`RunSink`]): producers write through a trait,
//!    so recording is opt-in (a process-global store armed by
//!    `TICTAC_RUN_STORE` or `--store`) and tests capture records in
//!    memory without touching disk.
//! 3. **Determinism-aware analytics** ([`query`]): diffs and the
//!    [`regress`] gate compare virtual-time observations, which are
//!    machine-independent on the sim backend — a corpus committed from
//!    one machine gates CI on another. Wall-clock bench records are
//!    flagged and skipped.
//!
//! Dependency discipline: this crate sees only `tictac-obs` (the JSON
//! value and the metrics `Snapshot`) and `tictac-trace`
//! ([`FaultCounters`](tictac_trace::FaultCounters)). `tictac-core`
//! depends on *it*, so records carry scheduler/backend names as plain
//! strings and fingerprints as `u64`s computed by the producer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod query;
pub mod record;
pub mod store;

pub use query::{
    diff_records, group_key, regress, GroupVerdict, MetricDelta, RegressPolicy, RegressReport,
    RunDiff, RunFilter, SessionSummary, Verdict,
};
pub use record::{
    BenchEvidence, IterationEvidence, Payload, PhaseMean, ReportEvidence, RunRecord,
    SessionEvidence, SCHEMA,
};
pub use store::{
    arm_global_store, fnv1a_64, global_store, load_lines, resolve_store_path, set_global_store,
    MemorySink, RunSink, RunStore, DEFAULT_STORE_PATH,
};
