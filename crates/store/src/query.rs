//! Cross-run analytics over a loaded corpus: filter predicates, pairwise
//! diffs, and history-aware regression gating.
//!
//! Everything here compares *simulated* observations — virtual-time
//! makespans, efficiencies, inversion counts — which are machine-
//! independent, so a corpus committed on one machine gates CI on another.
//! Bench records carry wall-clock timings and are explicitly skipped by
//! [`regress`] (and flagged by [`diff_records`]).

use crate::record::{Payload, RunRecord, SessionEvidence};

/// Filter predicates for `runs list` / `runs diff` / `runs regress`.
#[derive(Debug, Clone, Default)]
pub struct RunFilter {
    /// Exact workload (model / experiment) name.
    pub workload: Option<String>,
    /// Exact scheduler kind.
    pub scheduler: Option<String>,
    /// Exact backend name.
    pub backend: Option<String>,
    /// Exact record kind (`session` / `bench` / `report`).
    pub kind: Option<String>,
    /// Inclusive seed lower bound.
    pub seed_min: Option<u64>,
    /// Inclusive seed upper bound.
    pub seed_max: Option<u64>,
}

impl RunFilter {
    /// Whether `r` satisfies every set predicate.
    pub fn matches(&self, r: &RunRecord) -> bool {
        self.workload.as_deref().is_none_or(|w| w == r.workload)
            && self.scheduler.as_deref().is_none_or(|s| s == r.scheduler)
            && self.backend.as_deref().is_none_or(|b| b == r.backend)
            && self.kind.as_deref().is_none_or(|k| k == r.payload.kind())
            && self.seed_min.is_none_or(|lo| r.seed >= lo)
            && self.seed_max.is_none_or(|hi| r.seed <= hi)
    }
}

/// The identity key runs are compared under: two records with the same
/// key observed the same configuration, so any metric difference between
/// them is drift, not design.
pub fn group_key(r: &RunRecord) -> String {
    let mut key = format!(
        "{}/{}/{}x{}/{}/{}/seed{}",
        r.payload.kind(),
        r.workload,
        r.workers,
        r.ps,
        r.scheduler,
        r.backend,
        r.seed
    );
    // Scenario-driven runs carry the scenario identity too: the same
    // model/cluster-shape/seed tuple under different heterogeneity or
    // fault regimes is a different experiment, not drift.
    if r.scenario_fp != 0 {
        key.push_str(&format!("/scn{:016x}", r.scenario_fp));
    }
    // Likewise for communication granularity: a tuned partition/fusion
    // deployment is a different experiment from the default lowering.
    // The default config fingerprints to 0, so pre-pass keys are stable.
    if r.comm_fp != 0 {
        key.push_str(&format!("/comm{:016x}", r.comm_fp));
    }
    key
}

/// Nearest-rank percentile over a sorted sample (exact, not binned).
fn pctl(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Aggregate view of one session payload, used by `runs show`, diffs and
/// the regression gate.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Measured iterations.
    pub iterations: u64,
    /// Mean iteration makespan, nanoseconds.
    pub mean_makespan_ns: f64,
    /// Exact nearest-rank percentiles over the iteration makespans.
    pub p50_makespan_ns: u64,
    /// 95th percentile makespan.
    pub p95_makespan_ns: u64,
    /// 99th percentile makespan.
    pub p99_makespan_ns: u64,
    /// Mean realized efficiency (Eq. 3/4).
    pub mean_efficiency: f64,
    /// Mean goodput percentage.
    pub mean_goodput_pct: f64,
    /// Total priority inversions across iterations.
    pub inversions: u64,
    /// Total fault events (sum of every fault counter).
    pub fault_events: u64,
}

impl SessionSummary {
    /// Summarizes one session payload.
    pub fn of(s: &SessionEvidence) -> Self {
        let n = s.iterations.len() as f64;
        let mean = |f: fn(&crate::record::IterationEvidence) -> f64| {
            if s.iterations.is_empty() {
                0.0
            } else {
                s.iterations.iter().map(f).sum::<f64>() / n
            }
        };
        let mut makespans: Vec<u64> = s.iterations.iter().map(|i| i.makespan_ns).collect();
        makespans.sort_unstable();
        let f = &s.faults;
        Self {
            iterations: s.iterations.len() as u64,
            mean_makespan_ns: mean(|i| i.makespan_ns as f64),
            p50_makespan_ns: pctl(&makespans, 50.0),
            p95_makespan_ns: pctl(&makespans, 95.0),
            p99_makespan_ns: pctl(&makespans, 99.0),
            mean_efficiency: mean(|i| i.efficiency),
            mean_goodput_pct: mean(|i| i.goodput_pct),
            inversions: s.iterations.iter().map(|i| i.inversions).sum(),
            fault_events: f.drops
                + f.timeouts
                + f.retransmits
                + f.blackouts
                + f.crashes
                + f.ps_stalls
                + f.stragglers
                + f.deferred_ops
                + f.degraded_barriers,
        }
    }
}

/// One compared metric inside a [`RunDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Value in the first (older) record.
    pub a: f64,
    /// Value in the second (newer) record.
    pub b: f64,
}

impl MetricDelta {
    /// Signed change `b - a`.
    pub fn delta(&self) -> f64 {
        self.b - self.a
    }

    /// Bitwise equality — `NaN` vs `NaN` counts as unchanged.
    pub fn is_zero(&self) -> bool {
        self.a.to_bits() == self.b.to_bits()
    }
}

/// The result of comparing two records.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// Id of the older record.
    pub a_id: String,
    /// Id of the newer record.
    pub b_id: String,
    /// Per-metric comparisons (empty when the kinds don't match).
    pub metrics: Vec<MetricDelta>,
    /// Whether the evidence payloads are structurally identical (and,
    /// because encoding is canonical, byte-identical on the wire).
    pub payload_identical: bool,
    /// Caveats — kind mismatches, wall-clock warnings.
    pub notes: Vec<String>,
}

impl RunDiff {
    /// Zero drift: every compared metric is unchanged and the payloads
    /// are identical.
    pub fn is_zero(&self) -> bool {
        self.payload_identical && self.metrics.iter().all(MetricDelta::is_zero)
    }

    /// Human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = format!("diff {} -> {}\n", self.a_id, self.b_id);
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        for m in &self.metrics {
            if m.is_zero() {
                out.push_str(&format!("  {:<22} {:>14}  (unchanged)\n", m.name, m.a));
            } else {
                out.push_str(&format!(
                    "  {:<22} {:>14} -> {:<14} ({:+})\n",
                    m.name,
                    m.a,
                    m.b,
                    m.delta()
                ));
            }
        }
        out.push_str(&format!(
            "  payload: {}\n",
            if self.payload_identical {
                "byte-identical"
            } else {
                "DIFFERS"
            }
        ));
        out
    }
}

fn session_metrics(a: &SessionEvidence, b: &SessionEvidence) -> Vec<MetricDelta> {
    let (sa, sb) = (SessionSummary::of(a), SessionSummary::of(b));
    let m = |name: &str, a: f64, b: f64| MetricDelta {
        name: name.to_string(),
        a,
        b,
    };
    vec![
        m("iterations", sa.iterations as f64, sb.iterations as f64),
        m("mean_makespan_ns", sa.mean_makespan_ns, sb.mean_makespan_ns),
        m(
            "p50_makespan_ns",
            sa.p50_makespan_ns as f64,
            sb.p50_makespan_ns as f64,
        ),
        m(
            "p95_makespan_ns",
            sa.p95_makespan_ns as f64,
            sb.p95_makespan_ns as f64,
        ),
        m(
            "p99_makespan_ns",
            sa.p99_makespan_ns as f64,
            sb.p99_makespan_ns as f64,
        ),
        m("mean_efficiency", sa.mean_efficiency, sb.mean_efficiency),
        m("mean_goodput_pct", sa.mean_goodput_pct, sb.mean_goodput_pct),
        m("inversions", sa.inversions as f64, sb.inversions as f64),
        m(
            "fault_events",
            sa.fault_events as f64,
            sb.fault_events as f64,
        ),
    ]
}

/// Compares two records metric-by-metric.
pub fn diff_records(a: &RunRecord, b: &RunRecord) -> RunDiff {
    let mut notes = Vec::new();
    if group_key(a) != group_key(b) {
        notes.push(format!(
            "configurations differ ({} vs {}): deltas reflect design, not drift",
            group_key(a),
            group_key(b)
        ));
    }
    let metrics = match (&a.payload, &b.payload) {
        (Payload::Session(sa), Payload::Session(sb)) => session_metrics(sa, sb),
        (Payload::Bench(ba), Payload::Bench(bb)) => {
            notes.push("bench timings are wall-clock; cross-machine drift is expected".into());
            ba.phases
                .iter()
                .filter_map(|pa| {
                    bb.phases
                        .iter()
                        .find(|pb| pb.name == pa.name)
                        .map(|pb| MetricDelta {
                            name: format!("{}_ms", pa.name),
                            a: pa.mean_ms,
                            b: pb.mean_ms,
                        })
                })
                .collect()
        }
        (Payload::Report(ra), Payload::Report(rb)) => {
            if ra.report_fp != rb.report_fp {
                notes.push(format!(
                    "report fingerprint changed: {} -> {}",
                    ra.report_fp, rb.report_fp
                ));
            }
            vec![MetricDelta {
                name: "report_fp_changed".into(),
                a: 0.0,
                b: f64::from(u8::from(ra.report_fp != rb.report_fp)),
            }]
        }
        _ => {
            notes.push(format!(
                "incomparable kinds: {} vs {}",
                a.payload.kind(),
                b.payload.kind()
            ));
            Vec::new()
        }
    };
    RunDiff {
        a_id: a.id.clone(),
        b_id: b.id.clone(),
        metrics,
        payload_identical: a.payload == b.payload,
        notes,
    }
}

/// Thresholds for the history-aware regression gate.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressPolicy {
    /// How many prior records per group form the comparison window.
    pub window: usize,
    /// Allowed mean-makespan increase over the window's best, percent.
    pub makespan_pct: f64,
    /// Allowed mean-efficiency drop below the window's best, absolute.
    pub efficiency_abs: f64,
}

impl Default for RegressPolicy {
    fn default() -> Self {
        Self {
            window: 5,
            makespan_pct: 2.0,
            efficiency_abs: 0.01,
        }
    }
}

/// A group's regression verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Latest record is within policy of its window.
    Pass,
    /// Latest record worsened; each string names one violated gate.
    Drift(Vec<String>),
    /// Only one record in the group — nothing to compare against yet.
    New,
    /// Group excluded from gating, with the reason.
    Skipped(String),
}

/// One group's row in a [`RegressReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupVerdict {
    /// The group's identity key.
    pub key: String,
    /// Id of the group's latest record.
    pub latest_id: String,
    /// The verdict.
    pub verdict: Verdict,
}

/// The regression gate's full result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegressReport {
    /// Per-group verdicts, sorted by key.
    pub groups: Vec<GroupVerdict>,
}

impl RegressReport {
    /// Whether any group drifted (the CI failure condition).
    pub fn failed(&self) -> bool {
        self.groups
            .iter()
            .any(|g| matches!(g.verdict, Verdict::Drift(_)))
    }

    /// Human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for g in &self.groups {
            match &g.verdict {
                Verdict::Pass => out.push_str(&format!("PASS  {} ({})\n", g.key, g.latest_id)),
                Verdict::New => out.push_str(&format!("NEW   {} ({})\n", g.key, g.latest_id)),
                Verdict::Skipped(why) => {
                    out.push_str(&format!("SKIP  {} ({}): {why}\n", g.key, g.latest_id))
                }
                Verdict::Drift(gates) => {
                    out.push_str(&format!("DRIFT {} ({})\n", g.key, g.latest_id));
                    for gate in gates {
                        out.push_str(&format!("      - {gate}\n"));
                    }
                }
            }
        }
        let drifted = self
            .groups
            .iter()
            .filter(|g| matches!(g.verdict, Verdict::Drift(_)))
            .count();
        out.push_str(&format!(
            "{} group(s), {} drifted\n",
            self.groups.len(),
            drifted
        ));
        out
    }
}

/// Gates the latest record of every group against the `window` records
/// that preceded it. Session groups are judged on mean makespan (must not
/// exceed the window's best by more than `makespan_pct`), mean efficiency
/// (must not fall more than `efficiency_abs` below the window's best) and
/// inversion count (must not exceed the window's worst); report groups on
/// fingerprint equality with their most recent predecessor. Bench groups
/// and threaded-backend sessions observe wall-clock time and are skipped.
pub fn regress(records: &[RunRecord], policy: &RegressPolicy) -> RegressReport {
    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::HashMap<String, Vec<&RunRecord>> =
        std::collections::HashMap::new();
    for r in records {
        let key = group_key(r);
        groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        groups.get_mut(&group_key(r)).unwrap().push(r);
    }
    order.sort();
    let mut report = RegressReport::default();
    for key in order {
        let runs = &groups[&key];
        let latest = *runs.last().unwrap();
        let verdict = if matches!(latest.payload, Payload::Bench(_)) {
            Verdict::Skipped("wall-clock bench timings are machine-dependent".into())
        } else if latest.backend == "threaded" {
            Verdict::Skipped("threaded backend observes wall-clock time".into())
        } else if runs.len() < 2 {
            Verdict::New
        } else {
            let window_start = runs.len().saturating_sub(1 + policy.window);
            let window = &runs[window_start..runs.len() - 1];
            judge(latest, window, policy)
        };
        report.groups.push(GroupVerdict {
            key,
            latest_id: latest.id.clone(),
            verdict,
        });
    }
    report
}

fn judge(latest: &RunRecord, window: &[&RunRecord], policy: &RegressPolicy) -> Verdict {
    let mut gates = Vec::new();
    match &latest.payload {
        Payload::Session(s) => {
            let now = SessionSummary::of(s);
            let past: Vec<SessionSummary> = window
                .iter()
                .filter_map(|r| match &r.payload {
                    Payload::Session(s) => Some(SessionSummary::of(s)),
                    _ => None,
                })
                .collect();
            if past.is_empty() {
                return Verdict::New;
            }
            let best_makespan = past
                .iter()
                .map(|p| p.mean_makespan_ns)
                .fold(f64::INFINITY, f64::min);
            let limit = best_makespan * (1.0 + policy.makespan_pct / 100.0);
            if now.mean_makespan_ns > limit {
                gates.push(format!(
                    "mean makespan {:.0} ns exceeds window best {:.0} ns by more than {}%",
                    now.mean_makespan_ns, best_makespan, policy.makespan_pct
                ));
            }
            let best_eff = past
                .iter()
                .map(|p| p.mean_efficiency)
                .fold(f64::NEG_INFINITY, f64::max);
            if now.mean_efficiency < best_eff - policy.efficiency_abs {
                gates.push(format!(
                    "mean efficiency {:.4} fell more than {} below window best {:.4}",
                    now.mean_efficiency, policy.efficiency_abs, best_eff
                ));
            }
            let worst_inv = past.iter().map(|p| p.inversions).max().unwrap_or(0);
            if now.inversions > worst_inv {
                gates.push(format!(
                    "inversions {} exceed window worst {}",
                    now.inversions, worst_inv
                ));
            }
        }
        Payload::Report(r) => {
            let prior = window.iter().rev().find_map(|w| match &w.payload {
                Payload::Report(p) => Some(p),
                _ => None,
            });
            match prior {
                None => return Verdict::New,
                Some(p) if p.report_fp != r.report_fp => gates.push(format!(
                    "report fingerprint changed: {} -> {}",
                    p.report_fp, r.report_fp
                )),
                Some(_) => {}
            }
        }
        Payload::Bench(_) => unreachable!("bench groups are skipped before judging"),
    }
    if gates.is_empty() {
        Verdict::Pass
    } else {
        Verdict::Drift(gates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{IterationEvidence, ReportEvidence, SessionEvidence};

    fn iteration(makespan_ns: u64, efficiency: f64, inversions: u64) -> IterationEvidence {
        IterationEvidence {
            makespan_ns,
            throughput: 1.0,
            straggler_pct: 0.0,
            efficiency,
            speedup_potential: 0.0,
            goodput_pct: 100.0,
            inversions,
        }
    }

    fn session(id: &str, makespans: &[u64], efficiency: f64) -> RunRecord {
        RunRecord {
            id: id.into(),
            time_ms: 1,
            source: "session".into(),
            workload: "tiny_mlp".into(),
            model_fp: 1,
            workers: 2,
            ps: 1,
            scheduler: "tac".into(),
            backend: "sim".into(),
            seed: 7,
            fault_fp: 0,
            scenario_fp: 0,
            comm_fp: 0,
            provenance: String::new(),
            payload: Payload::Session(SessionEvidence {
                iterations: makespans
                    .iter()
                    .map(|&m| iteration(m, efficiency, 0))
                    .collect(),
                ..SessionEvidence::default()
            }),
        }
    }

    #[test]
    fn filter_predicates_compose() {
        let r = session("r000000", &[100], 0.9);
        let mut f = RunFilter {
            workload: Some("tiny_mlp".into()),
            scheduler: Some("tac".into()),
            seed_min: Some(5),
            seed_max: Some(9),
            ..RunFilter::default()
        };
        assert!(f.matches(&r));
        f.kind = Some("bench".into());
        assert!(!f.matches(&r));
        f.kind = Some("session".into());
        assert!(f.matches(&r));
        f.seed_max = Some(3);
        assert!(!f.matches(&r));
    }

    #[test]
    fn summary_percentiles_are_exact() {
        let r = session(
            "r000000",
            &[100, 200, 300, 400, 500, 600, 700, 800, 900, 1000],
            0.9,
        );
        if let Payload::Session(s) = &r.payload {
            let sum = SessionSummary::of(s);
            assert_eq!(sum.p50_makespan_ns, 500);
            assert_eq!(sum.p95_makespan_ns, 1000);
            assert_eq!(sum.p99_makespan_ns, 1000);
            assert_eq!(sum.mean_makespan_ns, 550.0);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn identical_sessions_diff_to_zero() {
        let a = session("r000000", &[100, 200], 0.9);
        let b = session("r000001", &[100, 200], 0.9);
        let d = diff_records(&a, &b);
        assert!(d.is_zero(), "{}", d.render());
        assert!(d.payload_identical);
        let c = session("r000002", &[100, 250], 0.9);
        let d = diff_records(&a, &c);
        assert!(!d.is_zero());
        assert!(d.render().contains("mean_makespan_ns"));
    }

    #[test]
    fn regress_passes_stable_history_and_flags_drift() {
        let history = vec![
            session("r000000", &[100, 100], 0.9),
            session("r000001", &[100, 100], 0.9),
            session("r000002", &[100, 100], 0.9),
        ];
        let report = regress(&history, &RegressPolicy::default());
        assert!(!report.failed(), "{}", report.render());
        assert!(matches!(report.groups[0].verdict, Verdict::Pass));

        let mut drifted = history.clone();
        drifted.push(session("r000003", &[150, 150], 0.9));
        let report = regress(&drifted, &RegressPolicy::default());
        assert!(report.failed());
        assert!(report.render().contains("DRIFT"));

        let mut slower_but_ok = history;
        slower_but_ok.push(session("r000003", &[101, 101], 0.9));
        let report = regress(&slower_but_ok, &RegressPolicy::default());
        assert!(!report.failed(), "{}", report.render());
    }

    #[test]
    fn regress_gates_report_fingerprints_and_skips_bench() {
        let report_rec = |id: &str, fp: u64| RunRecord {
            id: id.into(),
            time_ms: 1,
            source: "repro".into(),
            workload: "table1".into(),
            model_fp: 0,
            workers: 0,
            ps: 0,
            scheduler: "-".into(),
            backend: "sim".into(),
            seed: 42,
            fault_fp: 0,
            scenario_fp: 0,
            comm_fp: 0,
            provenance: String::new(),
            payload: Payload::Report(ReportEvidence {
                report_fp: fp,
                quick: true,
            }),
        };
        let stable = vec![report_rec("r000000", 5), report_rec("r000001", 5)];
        assert!(!regress(&stable, &RegressPolicy::default()).failed());
        let changed = vec![report_rec("r000000", 5), report_rec("r000001", 6)];
        let rep = regress(&changed, &RegressPolicy::default());
        assert!(rep.failed());
        assert!(rep.render().contains("fingerprint changed"));

        let bench = RunRecord {
            payload: Payload::Bench(crate::record::BenchEvidence::default()),
            ..report_rec("r000002", 0)
        };
        let rep = regress(&[bench], &RegressPolicy::default());
        assert!(!rep.failed());
        assert!(matches!(rep.groups[0].verdict, Verdict::Skipped(_)));
    }
}
