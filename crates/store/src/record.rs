//! The schema-versioned [`RunRecord`] and its strict JSONL codec.
//!
//! Every record is one line of hand-rolled JSON (the workspace vendors no
//! JSON crate; the value/parser/writer live in `tictac_obs::json`). The
//! codec is deliberately rigid so the corpus stays machine-checkable:
//!
//! - **Canonical field order.** Encoding emits object keys in one fixed
//!   order; decoding rejects any object whose key *sequence* differs —
//!   which subsumes unknown-field and missing-field rejection.
//! - **Schema versioning.** The first field is always `"schema"`; a
//!   record from a different schema version fails to decode with a clear
//!   error instead of being silently reinterpreted.
//! - **Byte-exact round-trips.** `encode(decode(line)) == line` for every
//!   line `encode` can produce. Floats are rendered in shortest-
//!   round-trip form (`format!("{n}")`), and `u64` values that can exceed
//!   2^53 (seeds, fingerprints) are carried as decimal strings so no
//!   precision is lost through the f64-backed JSON number type. The
//!   remaining integer fields are guarded: encoding asserts they fit in
//!   the 2^53 exactly-representable range.
//!
//! Non-finite floats encode as `null` and decode back to `NaN` — the
//! round-trip stays byte-exact, and analytics treat them as missing.

use tictac_obs::registry::{HistogramStats, MetricValue, Snapshot, TimerStats};
use tictac_obs::{parse_json, render_json, Json};
use tictac_trace::FaultCounters;

/// The store's current schema tag; bump on any wire-format change.
///
/// v2 added `scenario_fp` — the [`Scenario::fingerprint`] of the
/// declarative scenario that drove the run (`"0"` for runs not driven by
/// a scenario file). v3 added `comm_fp` — the `CommConfig::fingerprint`
/// of the communication granularity the run deployed with (`"0"` for the
/// default per-parameter lowering, so pre-pass runs keep their identity).
///
/// [`Scenario::fingerprint`]: https://docs.rs/tictac-scenario
pub const SCHEMA: &str = "tictac-run/v3";

/// Largest integer exactly representable in an f64-backed JSON number.
const MAX_SAFE_INT: u64 = 1 << 53;

/// One run's identity plus its observed evidence — a single JSONL line in
/// the store.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Store-assigned identifier (`r000042`); empty until appended.
    pub id: String,
    /// Wall-clock append time, milliseconds since the Unix epoch
    /// (0 when unknown; never compared by analytics).
    pub time_ms: u64,
    /// Which producer emitted the record: `session`, `bench` or `repro`.
    pub source: String,
    /// Workload label: the model name, or the experiment / bench label.
    pub workload: String,
    /// [`ModelGraph::fingerprint`] of the workload (0 when not model-shaped).
    ///
    /// [`ModelGraph::fingerprint`]: https://docs.rs/tictac-graph
    pub model_fp: u64,
    /// Worker count of the `ClusterSpec` the run deployed onto.
    pub workers: u32,
    /// Parameter-server count of the `ClusterSpec`.
    pub ps: u32,
    /// Scheduler kind (`baseline` / `random` / `tic` / `tac`, or `-`).
    pub scheduler: String,
    /// Execution backend (`sim` / `threaded`, or `-` for pure reports).
    pub backend: String,
    /// RNG seed the run was keyed on.
    pub seed: u64,
    /// [`FaultSpec::fingerprint`] of the fault regime (0 = quiet default).
    ///
    /// [`FaultSpec::fingerprint`]: https://docs.rs/tictac-faults
    pub fault_fp: u64,
    /// `Scenario::fingerprint` of the scenario file that drove the run
    /// (0 when the run was not scenario-driven).
    pub scenario_fp: u64,
    /// `CommConfig::fingerprint` of the communication granularity the run
    /// deployed with (0 = default per-parameter lowering).
    pub comm_fp: u64,
    /// Free-form provenance (git describe, CI job id, …); often empty.
    pub provenance: String,
    /// The observed evidence, tagged by kind.
    pub payload: Payload,
}

/// The evidence half of a [`RunRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A training-session run: per-iteration metrics plus the registry
    /// snapshot. Deterministic on the sim backend (virtual time), so two
    /// same-seed runs carry byte-identical payloads.
    Session(SessionEvidence),
    /// A wall-clock micro-benchmark: per-phase mean timings. Machine-
    /// dependent by nature; regression gating skips these groups.
    Bench(BenchEvidence),
    /// A rendered experiment report, reduced to a fingerprint: cheap
    /// drift detection for experiments that run no sessions themselves.
    Report(ReportEvidence),
}

impl Payload {
    /// The discriminant string stored in the record's `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Session(_) => "session",
            Payload::Bench(_) => "bench",
            Payload::Report(_) => "report",
        }
    }
}

/// Per-iteration observations of one session run.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationEvidence {
    /// Iteration makespan in simulated nanoseconds.
    pub makespan_ns: u64,
    /// Samples per second at this makespan.
    pub throughput: f64,
    /// Straggler overhead percentage (paper Table 5 metric).
    pub straggler_pct: f64,
    /// Realized scheduling efficiency, Eq. 3/4 over observed durations.
    pub efficiency: f64,
    /// Headroom left on the table (1 − efficiency, as a percentage).
    pub speedup_potential: f64,
    /// Percentage of scheduled ops that completed undeferred.
    pub goodput_pct: f64,
    /// Priority inversions observed in the iteration's trace.
    pub inversions: u64,
}

/// Evidence payload of a [`Payload::Session`] record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionEvidence {
    /// Measured iterations, in execution order (warmup excluded).
    pub iterations: Vec<IterationEvidence>,
    /// Fault counters accumulated across the measured iterations.
    pub faults: FaultCounters,
    /// The session registry's final snapshot (empty when disabled).
    pub snapshot: Snapshot,
}

/// One phase's mean wall-clock timing inside a [`Payload::Bench`] record.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMean {
    /// Phase name (`build`, `deploy`, `tic`, `simulate`, …).
    pub name: String,
    /// Mean wall-clock milliseconds over the bench's repetitions.
    pub mean_ms: f64,
}

/// Evidence payload of a [`Payload::Bench`] record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchEvidence {
    /// Per-phase mean timings.
    pub phases: Vec<PhaseMean>,
}

/// Evidence payload of a [`Payload::Report`] record.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportEvidence {
    /// FNV-1a fingerprint of the rendered report text.
    pub report_fp: u64,
    /// Whether the experiment ran in `--quick` mode.
    pub quick: bool,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// A `u64` carried as a JSON number; asserts it is exactly representable.
fn num_u64(v: u64, what: &str) -> Json {
    assert!(
        v <= MAX_SAFE_INT,
        "{what} = {v} exceeds 2^53 and would lose precision as a JSON number"
    );
    Json::Num(v as f64)
}

/// A `u64` carried as a decimal string (full range, no f64 involvement).
fn str_u64(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn iteration_json(it: &IterationEvidence) -> Json {
    Json::Obj(vec![
        ("makespan_ns".into(), num_u64(it.makespan_ns, "makespan_ns")),
        ("throughput".into(), Json::Num(it.throughput)),
        ("straggler_pct".into(), Json::Num(it.straggler_pct)),
        ("efficiency".into(), Json::Num(it.efficiency)),
        ("speedup_potential".into(), Json::Num(it.speedup_potential)),
        ("goodput_pct".into(), Json::Num(it.goodput_pct)),
        ("inversions".into(), num_u64(it.inversions, "inversions")),
    ])
}

fn faults_json(f: &FaultCounters) -> Json {
    Json::Obj(vec![
        ("drops".into(), num_u64(f.drops, "drops")),
        ("timeouts".into(), num_u64(f.timeouts, "timeouts")),
        ("retransmits".into(), num_u64(f.retransmits, "retransmits")),
        ("blackouts".into(), num_u64(f.blackouts, "blackouts")),
        ("crashes".into(), num_u64(f.crashes, "crashes")),
        ("ps_stalls".into(), num_u64(f.ps_stalls, "ps_stalls")),
        ("stragglers".into(), num_u64(f.stragglers, "stragglers")),
        (
            "deferred_ops".into(),
            num_u64(f.deferred_ops, "deferred_ops"),
        ),
        (
            "degraded_barriers".into(),
            num_u64(f.degraded_barriers, "degraded_barriers"),
        ),
    ])
}

fn metric_json(name: &str, value: &MetricValue) -> Json {
    let mut fields = vec![("name".into(), Json::Str(name.to_string()))];
    match value {
        MetricValue::Counter(v) => {
            fields.push(("type".into(), Json::Str("counter".into())));
            fields.push(("value".into(), num_u64(*v, name)));
        }
        MetricValue::Gauge(v) => {
            fields.push(("type".into(), Json::Str("gauge".into())));
            fields.push(("value".into(), Json::Num(*v)));
        }
        MetricValue::Histogram(h) => {
            fields.push(("type".into(), Json::Str("histogram".into())));
            fields.push((
                "bounds".into(),
                Json::Arr(h.bounds.iter().map(|&b| num_u64(b, "bound")).collect()),
            ));
            fields.push((
                "buckets".into(),
                Json::Arr(h.buckets.iter().map(|&b| num_u64(b, "bucket")).collect()),
            ));
            fields.push(("count".into(), num_u64(h.count, "count")));
            fields.push(("sum".into(), num_u64(h.sum, "sum")));
            fields.push(("max".into(), num_u64(h.max, "max")));
        }
        MetricValue::Timer(t) => {
            fields.push(("type".into(), Json::Str("timer".into())));
            fields.push(("count".into(), num_u64(t.count, "count")));
            fields.push(("total_ns".into(), num_u64(t.total_ns, "total_ns")));
            fields.push(("max_ns".into(), num_u64(t.max_ns, "max_ns")));
        }
    }
    Json::Obj(fields)
}

fn payload_json(p: &Payload) -> Json {
    match p {
        Payload::Session(s) => Json::Obj(vec![
            (
                "iterations".into(),
                Json::Arr(s.iterations.iter().map(iteration_json).collect()),
            ),
            ("faults".into(), faults_json(&s.faults)),
            (
                "snapshot".into(),
                Json::Arr(
                    s.snapshot
                        .entries
                        .iter()
                        .map(|(n, v)| metric_json(n, v))
                        .collect(),
                ),
            ),
        ]),
        Payload::Bench(b) => Json::Obj(vec![(
            "phases".into(),
            Json::Arr(
                b.phases
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(p.name.clone())),
                            ("mean_ms".into(), Json::Num(p.mean_ms)),
                        ])
                    })
                    .collect(),
            ),
        )]),
        Payload::Report(r) => Json::Obj(vec![
            ("report_fp".into(), str_u64(r.report_fp)),
            ("quick".into(), Json::Bool(r.quick)),
        ]),
    }
}

impl RunRecord {
    /// Renders the record as one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let obj = Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("id".into(), Json::Str(self.id.clone())),
            ("time_ms".into(), num_u64(self.time_ms, "time_ms")),
            ("source".into(), Json::Str(self.source.clone())),
            ("kind".into(), Json::Str(self.payload.kind().into())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("model_fp".into(), str_u64(self.model_fp)),
            (
                "workers".into(),
                num_u64(u64::from(self.workers), "workers"),
            ),
            ("ps".into(), num_u64(u64::from(self.ps), "ps")),
            ("scheduler".into(), Json::Str(self.scheduler.clone())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("seed".into(), str_u64(self.seed)),
            ("fault_fp".into(), str_u64(self.fault_fp)),
            ("scenario_fp".into(), str_u64(self.scenario_fp)),
            ("comm_fp".into(), str_u64(self.comm_fp)),
            ("provenance".into(), Json::Str(self.provenance.clone())),
            ("payload".into(), payload_json(&self.payload)),
        ]);
        render_json(&obj)
    }

    /// Parses one store line, rejecting schema mismatches, unknown or
    /// missing fields, out-of-order keys, and ill-typed values.
    pub fn decode(line: &str) -> Result<RunRecord, String> {
        let json = parse_json(line)?;
        let f = fields(
            &json,
            "record",
            &[
                "schema",
                "id",
                "time_ms",
                "source",
                "kind",
                "workload",
                "model_fp",
                "workers",
                "ps",
                "scheduler",
                "backend",
                "seed",
                "fault_fp",
                "scenario_fp",
                "comm_fp",
                "provenance",
                "payload",
            ],
        )?;
        let schema = get_str(f[0], "schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (this build reads `{SCHEMA}`)"
            ));
        }
        let kind = get_str(f[4], "kind")?;
        let payload = decode_payload(&kind, f[16])?;
        Ok(RunRecord {
            id: get_str(f[1], "id")?,
            time_ms: get_u64(f[2], "time_ms")?,
            source: get_str(f[3], "source")?,
            workload: get_str(f[5], "workload")?,
            model_fp: get_u64_str(f[6], "model_fp")?,
            workers: get_u32(f[7], "workers")?,
            ps: get_u32(f[8], "ps")?,
            scheduler: get_str(f[9], "scheduler")?,
            backend: get_str(f[10], "backend")?,
            seed: get_u64_str(f[11], "seed")?,
            fault_fp: get_u64_str(f[12], "fault_fp")?,
            scenario_fp: get_u64_str(f[13], "scenario_fp")?,
            comm_fp: get_u64_str(f[14], "comm_fp")?,
            provenance: get_str(f[15], "provenance")?,
            payload,
        })
    }
}

// ---------------------------------------------------------------------------
// Strict decoding
// ---------------------------------------------------------------------------

/// Checks that `j` is an object with *exactly* the expected keys in the
/// expected order, returning the values positionally. This one gate
/// enforces unknown-field, missing-field, and key-order rejection.
fn fields<'a>(j: &'a Json, what: &str, expected: &[&str]) -> Result<Vec<&'a Json>, String> {
    let obj = j
        .as_object()
        .ok_or_else(|| format!("{what}: expected an object"))?;
    if obj.len() != expected.len() {
        let got: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        return Err(format!(
            "{what}: expected fields {expected:?}, found {got:?}"
        ));
    }
    for ((key, _), want) in obj.iter().zip(expected) {
        if key != want {
            return Err(format!("{what}: expected field `{want}`, found `{key}`"));
        }
    }
    Ok(obj.iter().map(|(_, v)| v).collect())
}

fn get_str(j: &Json, what: &str) -> Result<String, String> {
    j.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: expected a string"))
}

fn get_bool(j: &Json, what: &str) -> Result<bool, String> {
    j.as_bool()
        .ok_or_else(|| format!("{what}: expected a bool"))
}

/// A float field; `null` reads back as `NaN` (the writer's encoding of
/// non-finite values), keeping round-trips byte-exact.
fn get_f64(j: &Json, what: &str) -> Result<f64, String> {
    match j {
        Json::Num(n) => Ok(*n),
        Json::Null => Ok(f64::NAN),
        _ => Err(format!("{what}: expected a number")),
    }
}

fn get_u64(j: &Json, what: &str) -> Result<u64, String> {
    let n = j
        .as_f64()
        .ok_or_else(|| format!("{what}: expected an unsigned integer"))?;
    if n < 0.0 || n.fract() != 0.0 || n > MAX_SAFE_INT as f64 {
        return Err(format!("{what}: {n} is not an exact unsigned integer"));
    }
    Ok(n as u64)
}

fn get_u32(j: &Json, what: &str) -> Result<u32, String> {
    let v = get_u64(j, what)?;
    u32::try_from(v).map_err(|_| format!("{what}: {v} exceeds u32"))
}

/// A full-range `u64` carried as a decimal string.
fn get_u64_str(j: &Json, what: &str) -> Result<u64, String> {
    let s = j
        .as_str()
        .ok_or_else(|| format!("{what}: expected a stringified integer"))?;
    s.parse::<u64>()
        .map_err(|e| format!("{what}: `{s}` is not a u64 ({e})"))
}

fn decode_iteration(j: &Json) -> Result<IterationEvidence, String> {
    let f = fields(
        j,
        "iteration",
        &[
            "makespan_ns",
            "throughput",
            "straggler_pct",
            "efficiency",
            "speedup_potential",
            "goodput_pct",
            "inversions",
        ],
    )?;
    Ok(IterationEvidence {
        makespan_ns: get_u64(f[0], "makespan_ns")?,
        throughput: get_f64(f[1], "throughput")?,
        straggler_pct: get_f64(f[2], "straggler_pct")?,
        efficiency: get_f64(f[3], "efficiency")?,
        speedup_potential: get_f64(f[4], "speedup_potential")?,
        goodput_pct: get_f64(f[5], "goodput_pct")?,
        inversions: get_u64(f[6], "inversions")?,
    })
}

fn decode_faults(j: &Json) -> Result<FaultCounters, String> {
    let f = fields(
        j,
        "faults",
        &[
            "drops",
            "timeouts",
            "retransmits",
            "blackouts",
            "crashes",
            "ps_stalls",
            "stragglers",
            "deferred_ops",
            "degraded_barriers",
        ],
    )?;
    Ok(FaultCounters {
        drops: get_u64(f[0], "drops")?,
        timeouts: get_u64(f[1], "timeouts")?,
        retransmits: get_u64(f[2], "retransmits")?,
        blackouts: get_u64(f[3], "blackouts")?,
        crashes: get_u64(f[4], "crashes")?,
        ps_stalls: get_u64(f[5], "ps_stalls")?,
        stragglers: get_u64(f[6], "stragglers")?,
        deferred_ops: get_u64(f[7], "deferred_ops")?,
        degraded_barriers: get_u64(f[8], "degraded_barriers")?,
    })
}

fn decode_u64_array(j: &Json, what: &str) -> Result<Vec<u64>, String> {
    j.as_array()
        .ok_or_else(|| format!("{what}: expected an array"))?
        .iter()
        .map(|v| get_u64(v, what))
        .collect()
}

fn decode_metric(j: &Json) -> Result<(String, MetricValue), String> {
    let obj = j
        .as_object()
        .ok_or_else(|| "metric: expected an object".to_string())?;
    let kind = obj
        .get(1)
        .filter(|(k, _)| k == "type")
        .map(|(_, v)| get_str(v, "metric type"))
        .ok_or_else(|| "metric: second field must be `type`".to_string())??;
    match kind.as_str() {
        "counter" => {
            let f = fields(j, "counter metric", &["name", "type", "value"])?;
            Ok((
                get_str(f[0], "name")?,
                MetricValue::Counter(get_u64(f[2], "value")?),
            ))
        }
        "gauge" => {
            let f = fields(j, "gauge metric", &["name", "type", "value"])?;
            Ok((
                get_str(f[0], "name")?,
                MetricValue::Gauge(get_f64(f[2], "value")?),
            ))
        }
        "histogram" => {
            let f = fields(
                j,
                "histogram metric",
                &["name", "type", "bounds", "buckets", "count", "sum", "max"],
            )?;
            Ok((
                get_str(f[0], "name")?,
                MetricValue::Histogram(HistogramStats {
                    bounds: decode_u64_array(f[2], "bounds")?,
                    buckets: decode_u64_array(f[3], "buckets")?,
                    count: get_u64(f[4], "count")?,
                    sum: get_u64(f[5], "sum")?,
                    max: get_u64(f[6], "max")?,
                }),
            ))
        }
        "timer" => {
            let f = fields(
                j,
                "timer metric",
                &["name", "type", "count", "total_ns", "max_ns"],
            )?;
            Ok((
                get_str(f[0], "name")?,
                MetricValue::Timer(TimerStats {
                    count: get_u64(f[2], "count")?,
                    total_ns: get_u64(f[3], "total_ns")?,
                    max_ns: get_u64(f[4], "max_ns")?,
                }),
            ))
        }
        other => Err(format!("metric: unknown type `{other}`")),
    }
}

fn decode_payload(kind: &str, j: &Json) -> Result<Payload, String> {
    match kind {
        "session" => {
            let f = fields(j, "session payload", &["iterations", "faults", "snapshot"])?;
            let iterations = f[0]
                .as_array()
                .ok_or_else(|| "iterations: expected an array".to_string())?
                .iter()
                .map(decode_iteration)
                .collect::<Result<_, _>>()?;
            let entries = f[2]
                .as_array()
                .ok_or_else(|| "snapshot: expected an array".to_string())?
                .iter()
                .map(decode_metric)
                .collect::<Result<_, _>>()?;
            Ok(Payload::Session(SessionEvidence {
                iterations,
                faults: decode_faults(f[1])?,
                snapshot: Snapshot { entries },
            }))
        }
        "bench" => {
            let f = fields(j, "bench payload", &["phases"])?;
            let phases = f[0]
                .as_array()
                .ok_or_else(|| "phases: expected an array".to_string())?
                .iter()
                .map(|p| {
                    let pf = fields(p, "phase", &["name", "mean_ms"])?;
                    Ok(PhaseMean {
                        name: get_str(pf[0], "name")?,
                        mean_ms: get_f64(pf[1], "mean_ms")?,
                    })
                })
                .collect::<Result<_, String>>()?;
            Ok(Payload::Bench(BenchEvidence { phases }))
        }
        "report" => {
            let f = fields(j, "report payload", &["report_fp", "quick"])?;
            Ok(Payload::Report(ReportEvidence {
                report_fp: get_u64_str(f[0], "report_fp")?,
                quick: get_bool(f[1], "quick")?,
            }))
        }
        other => Err(format!("unknown record kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            id: "r000007".into(),
            time_ms: 1_700_000_000_123,
            source: "session".into(),
            workload: "alexnet_v2".into(),
            model_fp: u64::MAX - 3,
            workers: 8,
            ps: 2,
            scheduler: "tac".into(),
            backend: "sim".into(),
            seed: u64::MAX,
            fault_fp: 0xDEAD_BEEF_CAFE_F00D,
            scenario_fp: 0x71C7_AC00_5CEA_4210,
            comm_fp: 0x7A87_1710_0CAF_E000,
            provenance: "ci/1234".into(),
            payload: Payload::Session(SessionEvidence {
                iterations: vec![IterationEvidence {
                    makespan_ns: 123_456_789,
                    throughput: 512.25,
                    straggler_pct: 1.5,
                    efficiency: 0.875,
                    speedup_potential: 12.5,
                    goodput_pct: 100.0,
                    inversions: 3,
                }],
                faults: FaultCounters {
                    drops: 2,
                    retransmits: 2,
                    ..FaultCounters::default()
                },
                snapshot: Snapshot {
                    entries: vec![
                        ("session.iterations".into(), MetricValue::Counter(10)),
                        ("session.throughput".into(), MetricValue::Gauge(512.25)),
                        (
                            "session.makespan_us".into(),
                            MetricValue::Histogram(HistogramStats {
                                bounds: vec![100, 1000],
                                buckets: vec![0, 1, 0],
                                count: 1,
                                sum: 123,
                                max: 123,
                            }),
                        ),
                        (
                            "session.wall".into(),
                            MetricValue::Timer(TimerStats {
                                count: 1,
                                total_ns: 42,
                                max_ns: 42,
                            }),
                        ),
                    ],
                },
            }),
        }
    }

    #[test]
    fn encode_decode_encode_is_byte_identical() {
        let line = sample().encode();
        let decoded = RunRecord::decode(&line).unwrap();
        assert_eq!(decoded, sample());
        assert_eq!(decoded.encode(), line);
    }

    #[test]
    fn big_u64s_survive_the_f64_bottleneck() {
        let r = RunRecord::decode(&sample().encode()).unwrap();
        assert_eq!(r.seed, u64::MAX);
        assert_eq!(r.model_fp, u64::MAX - 3);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let line = sample().encode().replace("tictac-run/v3", "tictac-run/v2");
        let err = RunRecord::decode(&line).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn unknown_and_missing_fields_are_rejected() {
        let line = sample().encode();
        // Unknown field injected after `schema`.
        let unknown = line.replacen("\"id\":", "\"surprise\":1,\"id\":", 1);
        assert!(RunRecord::decode(&unknown).is_err());
        // Missing field: drop `seed`.
        let missing = line.replacen("\"seed\":\"18446744073709551615\",", "", 1);
        assert!(RunRecord::decode(&missing).is_err());
        // Reordered fields are also rejected: order is part of the schema.
        let reordered = line.replacen("\"workers\":8,\"ps\":2", "\"ps\":2,\"workers\":8", 1);
        assert!(RunRecord::decode(&reordered).is_err());
    }

    #[test]
    fn bench_and_report_payloads_round_trip() {
        let mut r = sample();
        r.payload = Payload::Bench(BenchEvidence {
            phases: vec![
                PhaseMean {
                    name: "build".into(),
                    mean_ms: 0.125,
                },
                PhaseMean {
                    name: "tic".into(),
                    mean_ms: 3.5,
                },
            ],
        });
        let line = r.encode();
        assert_eq!(RunRecord::decode(&line).unwrap().encode(), line);

        r.payload = Payload::Report(ReportEvidence {
            report_fp: u64::MAX - 1,
            quick: true,
        });
        let line = r.encode();
        let back = RunRecord::decode(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.encode(), line);
    }
}
