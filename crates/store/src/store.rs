//! The append-only JSONL store, the [`RunSink`] seam producers emit
//! through, and the process-global store wired up from `TICTAC_RUN_STORE`.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::record::RunRecord;

/// FNV-1a over arbitrary bytes — the workspace's standard content hash
/// (the same scheme `ModelGraph::fingerprint` and the golden traces use).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Anything that accepts finished [`RunRecord`]s. `Session` and the
/// binaries write through this seam, so tests can capture records with a
/// [`MemorySink`] while production appends to a [`RunStore`] file.
pub trait RunSink: Send + Sync + std::fmt::Debug {
    /// Accepts one finished record. Sinks assign ids/timestamps as they
    /// see fit; callers leave `id` empty and `time_ms` zero.
    fn record(&self, record: RunRecord);
}

/// An in-memory sink for tests and dry runs.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<RunRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<RunRecord> {
        std::mem::take(&mut self.records.lock().unwrap())
    }
}

impl RunSink for MemorySink {
    fn record(&self, record: RunRecord) {
        self.records.lock().unwrap().push(record);
    }
}

/// The append-only run store: one schema-checked JSONL line per record.
///
/// Appends are serialized through a mutex because experiments fan
/// sessions out across worker threads (`parallel_map`); a torn line would
/// poison the whole corpus. Loads are strict — any undecodable line
/// fails with its line number rather than being skipped.
#[derive(Debug)]
pub struct RunStore {
    path: PathBuf,
    lock: Mutex<()>,
}

impl RunStore {
    /// A store backed by `path`; the file is created on first append.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            lock: Mutex::new(()),
        }
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, assigning the next sequential id (`r000042`)
    /// and — when the caller left it zero — the current wall-clock
    /// timestamp. Returns the assigned id.
    pub fn append(&self, mut record: RunRecord) -> io::Result<String> {
        let _guard = self.lock.lock().unwrap();
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let existing = match fs::read_to_string(&self.path) {
            Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        record.id = format!("r{existing:06}");
        if record.time_ms == 0 {
            record.time_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(file, "{}", record.encode())?;
        Ok(record.id)
    }

    /// Loads every record, in append order.
    pub fn load(&self) -> io::Result<Vec<RunRecord>> {
        let _guard = self.lock.lock().unwrap();
        let text = match fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        load_lines(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Parses a JSONL corpus, failing on the first bad line with its number.
pub fn load_lines(text: &str) -> Result<Vec<RunRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| RunRecord::decode(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

impl RunSink for RunStore {
    fn record(&self, record: RunRecord) {
        if let Err(e) = self.append(record) {
            eprintln!("tictac-store: dropped run record: {e}");
        }
    }
}

static GLOBAL: Mutex<Option<Arc<RunStore>>> = Mutex::new(None);

/// Points the process-global store at `path` (used by the binaries'
/// `--store` flags), replacing any earlier target.
pub fn set_global_store(path: impl Into<PathBuf>) -> Arc<RunStore> {
    let store = Arc::new(RunStore::at(path));
    *GLOBAL.lock().unwrap() = Some(Arc::clone(&store));
    store
}

/// The process-global store, if one is configured: either set explicitly
/// via [`set_global_store`] or inherited from the `TICTAC_RUN_STORE`
/// environment variable. `None` means recording is off — the default, so
/// sessions cost nothing unless a corpus was asked for.
pub fn global_store() -> Option<Arc<RunStore>> {
    let mut global = GLOBAL.lock().unwrap();
    if global.is_none() {
        if let Ok(path) = std::env::var("TICTAC_RUN_STORE") {
            if !path.is_empty() {
                *global = Some(Arc::new(RunStore::at(path)));
            }
        }
    }
    global.clone()
}

/// The committed default corpus the read-side `runs` subcommands fall
/// back to when neither `--store` nor `TICTAC_RUN_STORE` names a path.
pub const DEFAULT_STORE_PATH: &str = "results/runs.jsonl";

/// The one `--store` / `TICTAC_RUN_STORE` resolution rule, shared by
/// every binary that *arms recording* (`tictac run`, `repro`, `bench`):
/// an explicit non-empty `--store` value arms the process-global store at
/// that path; otherwise the global store stands as-is (set earlier, or
/// inherited from `TICTAC_RUN_STORE` via [`global_store`]). Returns the
/// armed store, or `None` when recording stays off.
pub fn arm_global_store(explicit: Option<&str>) -> Option<Arc<RunStore>> {
    match explicit.filter(|p| !p.is_empty()) {
        Some(path) => Some(set_global_store(path)),
        None => global_store(),
    }
}

/// The same resolution rule for *read-side* commands (`tictac runs`),
/// which always need a path: `--store`, else `TICTAC_RUN_STORE`, else
/// the committed [`DEFAULT_STORE_PATH`].
pub fn resolve_store_path(explicit: Option<&str>) -> PathBuf {
    explicit
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
        .or_else(|| {
            std::env::var("TICTAC_RUN_STORE")
                .ok()
                .filter(|p| !p.is_empty())
                .map(PathBuf::from)
        })
        .unwrap_or_else(|| PathBuf::from(DEFAULT_STORE_PATH))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Payload, ReportEvidence, SessionEvidence};

    fn record(seed: u64) -> RunRecord {
        RunRecord {
            id: String::new(),
            time_ms: 0,
            source: "session".into(),
            workload: "tiny_mlp".into(),
            model_fp: 7,
            workers: 2,
            ps: 1,
            scheduler: "tac".into(),
            backend: "sim".into(),
            seed,
            fault_fp: 0,
            scenario_fp: 0,
            comm_fp: 0,
            provenance: String::new(),
            payload: Payload::Session(SessionEvidence::default()),
        }
    }

    #[test]
    fn append_assigns_sequential_ids_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("tictac-store-{}", std::process::id()));
        let store = RunStore::at(dir.join("runs.jsonl"));
        let _ = std::fs::remove_file(store.path());
        assert_eq!(store.append(record(1)).unwrap(), "r000000");
        assert_eq!(store.append(record(2)).unwrap(), "r000001");
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].id, "r000000");
        assert_eq!(loaded[0].seed, 1);
        assert_eq!(loaded[1].seed, 2);
        assert!(loaded.iter().all(|r| r.time_ms > 0));
        let _ = std::fs::remove_file(store.path());
        let _ = std::fs::remove_dir(dir);
    }

    #[test]
    fn missing_file_loads_empty() {
        let store = RunStore::at("/nonexistent-dir-for-sure/runs.jsonl");
        assert!(store.load().unwrap().is_empty());
    }

    #[test]
    fn bad_lines_fail_with_line_numbers() {
        let mut r = record(3);
        r.payload = Payload::Report(ReportEvidence {
            report_fp: 9,
            quick: false,
        });
        let text = format!("{}\n{{\"schema\":\"bogus\"}}\n", r.encode());
        let err = load_lines(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn store_path_resolution_prefers_explicit_flag() {
        assert_eq!(
            resolve_store_path(Some("custom.jsonl")),
            PathBuf::from("custom.jsonl")
        );
        // An empty flag value is "not given", not "the empty path".
        if std::env::var("TICTAC_RUN_STORE").is_err() {
            assert_eq!(
                resolve_store_path(Some("")),
                PathBuf::from(DEFAULT_STORE_PATH)
            );
            assert_eq!(resolve_store_path(None), PathBuf::from(DEFAULT_STORE_PATH));
        }
    }

    #[test]
    fn memory_sink_captures_records() {
        let sink = MemorySink::new();
        sink.record(record(5));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seed, 5);
        assert!(sink.take().is_empty());
    }
}
