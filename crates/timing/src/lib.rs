//! Virtual time and time oracles for the TicTac reproduction.
//!
//! The scheduling algorithms of the paper consume a *time oracle*
//! `Time(op)` — a prediction of each op's execution time assuming a
//! dedicated resource (§3.1). This crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time used
//!   by the discrete-event simulator.
//! * [`TimeOracle`] — the oracle trait.
//! * [`GeneralOracle`] — the *general time oracle* of Equation 5 (TIC):
//!   every `recv` costs one unit, everything else is free.
//! * [`CostOracle`] — a platform cost model translating op annotations
//!   (flops, bytes) into durations using calibrated hardware constants
//!   ([`Platform`]); this substitutes for measuring on the paper's Azure
//!   GPU (envG) and 1 GbE CPU (envC) testbeds.
//! * [`MeasuredProfile`] — a profile of measured durations (the paper's
//!   tracing-based oracle: minimum of 5 measured runs per op, §5).
//! * [`NoiseModel`] — multiplicative log-normal runtime noise plus
//!   occasional per-worker slowdowns, modelling the system-level variance
//!   the paper observes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod noise;
mod oracle;
mod platform;
mod retry;
mod time;

pub use noise::NoiseModel;
pub use oracle::{CostOracle, GeneralOracle, MeasuredProfile, TimeOracle};
pub use platform::Platform;
pub use retry::RetryPolicy;
pub use time::{SimDuration, SimTime};
