//! Runtime-variance models.
//!
//! The paper attributes iteration-time variance to two sources (§6.3):
//! per-op system noise and occasional system-level slowdowns of an entire
//! worker. Both are modelled here with a seeded RNG so simulations are
//! exactly reproducible.

use crate::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Multiplicative log-normal per-op noise plus occasional whole-worker
/// slowdowns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the underlying normal; a per-op duration is
    /// multiplied by `exp(sigma * z)`, `z ~ N(0,1)`.
    sigma: f64,
    /// Probability that a worker experiences a system-level slowdown in a
    /// given iteration.
    slowdown_prob: f64,
    /// Multiplicative factor applied to all ops of a slowed-down worker.
    slowdown_factor: f64,
}

impl NoiseModel {
    /// No noise at all: durations are exactly the oracle's predictions.
    pub fn none() -> Self {
        Self {
            sigma: 0.0,
            slowdown_prob: 0.0,
            slowdown_factor: 1.0,
        }
    }

    /// Default noise calibrated to the paper's observations: a few percent
    /// of per-op jitter, and a 1% chance per iteration that a worker is
    /// slowed by 1.15x (background interference on shared cloud hardware).
    ///
    /// The calibration keeps system-level variance *small relative to
    /// schedule-induced variance*, matching the paper's finding that "most
    /// of the variation in iteration time arises from random schedules in
    /// parameter transfers" (§6.2, R² = 0.98).
    pub fn realistic() -> Self {
        Self {
            sigma: 0.04,
            slowdown_prob: 0.01,
            slowdown_factor: 1.15,
        }
    }

    /// Noise for a dedicated (non-shared) cluster, like the paper's envC:
    /// half the jitter of [`NoiseModel::realistic`] and rare slowdowns.
    pub fn dedicated() -> Self {
        Self {
            sigma: 0.02,
            slowdown_prob: 0.005,
            slowdown_factor: 1.15,
        }
    }

    /// Creates a custom noise model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`, `slowdown_prob` is outside `[0, 1]`, or
    /// `slowdown_factor < 1`.
    pub fn new(sigma: f64, slowdown_prob: f64, slowdown_factor: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(
            (0.0..=1.0).contains(&slowdown_prob),
            "slowdown_prob must be a probability"
        );
        assert!(slowdown_factor >= 1.0, "slowdown_factor must be >= 1");
        Self {
            sigma,
            slowdown_prob,
            slowdown_factor,
        }
    }

    /// The per-op jitter parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The per-iteration whole-worker slowdown probability.
    pub fn slowdown_prob(&self) -> f64 {
        self.slowdown_prob
    }

    /// Draws a multiplicative per-op noise factor.
    pub fn op_factor(&self, rng: &mut impl Rng) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        (self.sigma * standard_normal(rng)).exp()
    }

    /// Applies per-op noise to a duration.
    pub fn apply(&self, rng: &mut impl Rng, base: SimDuration) -> SimDuration {
        base.mul_f64(self.op_factor(rng))
    }

    /// Draws this iteration's slowdown factor for one worker: either 1.0
    /// (typical) or the configured slowdown.
    pub fn worker_factor(&self, rng: &mut impl Rng) -> f64 {
        if self.slowdown_prob > 0.0 && rng.gen::<f64>() < self.slowdown_prob {
            self.slowdown_factor
        } else {
            1.0
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::realistic()
    }
}

/// Samples a standard normal via the Box–Muller transform (avoids an extra
/// dependency on `rand_distr`).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = NoiseModel::none();
        let d = SimDuration::from_micros(100);
        assert_eq!(n.apply(&mut rng, d), d);
        assert_eq!(n.worker_factor(&mut rng), 1.0);
    }

    #[test]
    fn noise_is_seeded_and_reproducible() {
        let n = NoiseModel::realistic();
        let d = SimDuration::from_micros(100);
        let a: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..5).map(|_| n.apply(&mut rng, d)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(7);
            (0..5).map(|_| n.apply(&mut rng, d)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn op_factor_distribution_is_sane() {
        let n = NoiseModel::new(0.05, 0.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..10_000).map(|_| n.op_factor(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Log-normal with sigma=0.05 has mean exp(0.00125) ~ 1.00125.
        assert!((mean - 1.0).abs() < 0.01, "mean {mean} too far from 1");
        assert!(samples.iter().all(|&f| f > 0.5 && f < 2.0));
    }

    #[test]
    fn worker_slowdown_happens_at_configured_rate() {
        let n = NoiseModel::new(0.0, 0.25, 2.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let slowed = (0..10_000)
            .filter(|_| n.worker_factor(&mut rng) > 1.0)
            .count();
        let rate = slowed as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        NoiseModel::new(0.0, 1.5, 2.0);
    }
}
