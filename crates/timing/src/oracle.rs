//! Time oracles: predicted per-op execution times.

use crate::platform::Platform;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use tictac_graph::{Graph, OpId, OpKind};

/// Predicts the execution time of each op assuming a dedicated resource
/// (the paper's `Time(op)`, §3.1).
///
/// The trait is object-safe; schedulers take `&dyn TimeOracle`.
pub trait TimeOracle {
    /// Predicted duration of `op` in `graph`.
    fn duration(&self, graph: &Graph, op: OpId) -> SimDuration;

    /// Sum of predicted durations over all ops — the upper makespan bound
    /// `U` of Equation 1 when applied to a partition.
    fn total(&self, graph: &Graph) -> SimDuration {
        graph.op_ids().map(|id| self.duration(graph, id)).sum()
    }
}

impl<T: TimeOracle + ?Sized> TimeOracle for &T {
    fn duration(&self, graph: &Graph, op: OpId) -> SimDuration {
        (**self).duration(graph, op)
    }
}

impl<T: TimeOracle + ?Sized> TimeOracle for Box<T> {
    fn duration(&self, graph: &Graph, op: OpId) -> SimDuration {
        (**self).duration(graph, op)
    }
}

/// The *general time oracle* of Equation 5, used by TIC: `recv` ops cost
/// one unit, every other op costs zero. Only relative magnitudes matter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneralOracle;

impl GeneralOracle {
    /// The unit cost assigned to a `recv`.
    pub const UNIT: SimDuration = SimDuration::from_micros(1);
}

impl TimeOracle for GeneralOracle {
    fn duration(&self, graph: &Graph, op: OpId) -> SimDuration {
        if graph.op(op).is_recv() {
            GeneralOracle::UNIT
        } else {
            SimDuration::ZERO
        }
    }
}

/// A platform cost model: translates op cost annotations into durations
/// using calibrated hardware constants.
///
/// * compute / aggregate / read / update → launch overhead + flops at the
///   device's throughput,
/// * `recv` → latency + bytes at channel bandwidth (the wire time of the
///   transfer is attributed to the receiving end),
/// * `send` → a fixed small hand-off cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostOracle {
    platform: Platform,
}

impl CostOracle {
    /// Cost attributed to a `send` op (hand-off to the channel).
    pub const SEND_COST: SimDuration = SimDuration::from_micros(1);

    /// Creates an oracle for the given platform.
    pub fn new(platform: Platform) -> Self {
        Self { platform }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

impl TimeOracle for CostOracle {
    fn duration(&self, graph: &Graph, op: OpId) -> SimDuration {
        // Heterogeneity: flops scale by the device's speed factor and wire
        // time by the channel's bandwidth factor. Both divisions are exact
        // for the uniform factor 1.0 (IEEE-754: `x / 1.0 == x` bitwise),
        // so homogeneous graphs keep byte-identical durations.
        let o = graph.op(op);
        match o.kind() {
            OpKind::Recv { channel, .. } => self
                .platform
                .transfer_time_scaled(o.cost().bytes, 1.0 / graph.channel_bandwidth(channel)),
            OpKind::Send { .. } => CostOracle::SEND_COST,
            OpKind::Compute => {
                let flops = o.cost().flops / graph.device_speed(o.device());
                if graph.device(o.device()).is_worker() {
                    self.platform.worker_compute_time(flops)
                } else {
                    self.platform.ps_compute_time(flops)
                }
            }
            OpKind::Aggregate { .. } | OpKind::Read { .. } | OpKind::Update { .. } => {
                let flops = o.cost().flops / graph.device_speed(o.device());
                self.platform.ps_compute_time(flops)
            }
        }
    }
}

/// A measured per-op profile: the paper's tracing-based oracle.
///
/// The paper's time-oracle estimator executes each op five times and takes
/// the **minimum** of the measured runs (§5) — the minimum filters out
/// queueing delay and interference, approximating the dedicated-resource
/// time the scheduling problem is defined over. Build profiles with
/// [`MeasuredProfile::from_runs`] (typically fed by `tictac-trace`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasuredProfile {
    durations: Vec<SimDuration>,
}

impl MeasuredProfile {
    /// Builds a profile from per-run, per-op measurements, taking the
    /// minimum across runs for every op.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty or the runs have inconsistent lengths.
    pub fn from_runs(runs: &[Vec<SimDuration>]) -> Self {
        assert!(!runs.is_empty(), "at least one run is required");
        let n = runs[0].len();
        assert!(
            runs.iter().all(|r| r.len() == n),
            "all runs must cover the same ops"
        );
        let durations = (0..n)
            .map(|i| runs.iter().map(|r| r[i]).min().expect("non-empty runs"))
            .collect();
        Self { durations }
    }

    /// Builds a profile directly from one duration per op.
    pub fn from_durations(durations: Vec<SimDuration>) -> Self {
        Self { durations }
    }

    /// Number of profiled ops.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// The profiled duration of `op`, or zero if unprofiled.
    pub fn get(&self, op: OpId) -> SimDuration {
        self.durations
            .get(op.index())
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }
}

impl TimeOracle for MeasuredProfile {
    fn duration(&self, _graph: &Graph, op: OpId) -> SimDuration {
        self.get(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpKind};

    fn sample_graph() -> (Graph, OpId, OpId, OpId) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p = b.add_param("p", 1 << 20);
        let recv = b.add_op("recv", w, OpKind::recv(p, ch), Cost::bytes(1 << 20), &[]);
        let comp = b.add_op("comp", w, OpKind::Compute, Cost::flops(3.0e9), &[recv]);
        let send = b.add_op(
            "send",
            w,
            OpKind::send(p, ch),
            Cost::bytes(1 << 20),
            &[comp],
        );
        (b.build().unwrap(), recv, comp, send)
    }

    #[test]
    fn general_oracle_is_unit_for_recv_only() {
        let (g, recv, comp, send) = sample_graph();
        let o = GeneralOracle;
        assert_eq!(o.duration(&g, recv), GeneralOracle::UNIT);
        assert_eq!(o.duration(&g, comp), SimDuration::ZERO);
        assert_eq!(o.duration(&g, send), SimDuration::ZERO);
        assert_eq!(o.total(&g), GeneralOracle::UNIT);
    }

    #[test]
    fn cost_oracle_matches_platform_model() {
        let (g, recv, comp, send) = sample_graph();
        let p = Platform::cloud_gpu();
        let o = CostOracle::new(p.clone());
        assert_eq!(o.duration(&g, recv), p.transfer_time(1 << 20));
        assert_eq!(o.duration(&g, comp), p.worker_compute_time(3.0e9));
        assert_eq!(o.duration(&g, send), CostOracle::SEND_COST);
    }

    #[test]
    fn cost_oracle_uses_ps_speed_on_ps_devices() {
        let mut b = GraphBuilder::new();
        let _w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let p = b.add_param("p", 64);
        let agg = b.add_op(
            "agg",
            ps,
            OpKind::Aggregate { param: p },
            Cost::flops(4.0e8),
            &[],
        );
        let g = b.build().unwrap();
        let plat = Platform::cloud_gpu();
        let o = CostOracle::new(plat.clone());
        assert_eq!(o.duration(&g, agg), plat.ps_compute_time(4.0e8));
    }

    #[test]
    fn measured_profile_takes_min_across_runs() {
        let runs = vec![
            vec![SimDuration::from_nanos(30), SimDuration::from_nanos(100)],
            vec![SimDuration::from_nanos(20), SimDuration::from_nanos(150)],
            vec![SimDuration::from_nanos(25), SimDuration::from_nanos(90)],
        ];
        let prof = MeasuredProfile::from_runs(&runs);
        assert_eq!(prof.len(), 2);
        assert_eq!(prof.get(OpId::from_index(0)), SimDuration::from_nanos(20));
        assert_eq!(prof.get(OpId::from_index(1)), SimDuration::from_nanos(90));
        // Out-of-range ops are unprofiled.
        assert_eq!(prof.get(OpId::from_index(9)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "same ops")]
    fn measured_profile_rejects_ragged_runs() {
        MeasuredProfile::from_runs(&[
            vec![SimDuration::ZERO],
            vec![SimDuration::ZERO, SimDuration::ZERO],
        ]);
    }

    #[test]
    fn oracle_trait_objects_work() {
        let (g, recv, ..) = sample_graph();
        let boxed: Box<dyn TimeOracle> = Box::new(GeneralOracle);
        assert_eq!(boxed.duration(&g, recv), GeneralOracle::UNIT);
        let by_ref: &dyn TimeOracle = &GeneralOracle;
        assert_eq!(by_ref.duration(&g, recv), GeneralOracle::UNIT);
    }
}
