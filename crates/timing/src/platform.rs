//! Hardware platform models substituting for the paper's testbeds.
//!
//! The paper measures on two environments (§6): **envG**, Azure NC6 VMs with
//! one NVIDIA K80 each and CPU-only parameter servers on a cloud network,
//! and **envC**, a 32-core commodity CPU cluster on 1 GbE. We model each
//! with a small set of calibrated constants; absolute times are approximate
//! but the communication/computation balance — which determines scheduling
//! benefit (paper §3.2) — is faithful.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Calibrated hardware constants of a deployment environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    /// Sustained compute throughput of a worker, in FLOP/s.
    worker_flops: f64,
    /// Sustained compute throughput of a parameter server, in FLOP/s.
    ps_flops: f64,
    /// Per-direction bandwidth of a worker–PS channel, bytes/s.
    bandwidth: f64,
    /// One-way network latency per transfer.
    latency: SimDuration,
    /// Fixed per-op launch overhead on compute resources.
    op_overhead: SimDuration,
}

impl Platform {
    /// Creates a custom platform.
    ///
    /// # Panics
    ///
    /// Panics if any throughput is not strictly positive.
    pub fn new(
        name: impl Into<String>,
        worker_flops: f64,
        ps_flops: f64,
        bandwidth: f64,
        latency: SimDuration,
        op_overhead: SimDuration,
    ) -> Self {
        assert!(worker_flops > 0.0, "worker_flops must be positive");
        assert!(ps_flops > 0.0, "ps_flops must be positive");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Self {
            name: name.into(),
            worker_flops,
            ps_flops,
            bandwidth,
            latency,
            op_overhead,
        }
    }

    /// envG: cloud GPU workers (K80-class, ~2 TFLOP/s sustained fp32),
    /// CPU parameter servers, ~25 Gb/s datacenter network.
    ///
    /// Calibrated so the communication/computation balance point falls at
    /// 4–8 workers per PS, matching where the paper's scheduling gains
    /// peak (§6.1).
    pub fn cloud_gpu() -> Self {
        Platform::new(
            "envG",
            2.0e12,
            4.0e11,
            25e9 / 8.0,
            SimDuration::from_micros(50),
            SimDuration::from_micros(8),
        )
    }

    /// envC: commodity 32-core CPU cluster (~150 GFLOP/s sustained),
    /// 1 GbE network.
    pub fn cpu_cluster() -> Self {
        Platform::new(
            "envC",
            1.5e11,
            1.5e11,
            1e9 / 8.0,
            SimDuration::from_micros(80),
            SimDuration::from_micros(15),
        )
    }

    /// The platform's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worker compute throughput, FLOP/s.
    pub fn worker_flops(&self) -> f64 {
        self.worker_flops
    }

    /// Parameter-server compute throughput, FLOP/s.
    pub fn ps_flops(&self) -> f64 {
        self.ps_flops
    }

    /// Channel bandwidth, bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// One-way transfer latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Per-op launch overhead.
    pub fn op_overhead(&self) -> SimDuration {
        self.op_overhead
    }

    /// Returns a copy with bandwidth scaled by `factor` (for network
    /// sensitivity ablations).
    pub fn with_bandwidth_factor(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "factor must be positive");
        let mut p = self.clone();
        p.bandwidth *= factor;
        p.name = format!("{}(bw x{factor})", p.name);
        p
    }

    /// Time to execute `flops` of work on a worker.
    pub fn worker_compute_time(&self, flops: f64) -> SimDuration {
        self.op_overhead + SimDuration::from_secs_f64(flops / self.worker_flops)
    }

    /// Time to execute `flops` of work on a parameter server.
    pub fn ps_compute_time(&self, flops: f64) -> SimDuration {
        self.op_overhead + SimDuration::from_secs_f64(flops / self.ps_flops)
    }

    /// Wire time for a `bytes`-byte transfer at full channel bandwidth.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.transfer_time_shared(bytes, 1.0)
    }

    /// Wire time for a `bytes`-byte transfer when the link is fair-shared
    /// `share` ways (TCP-style): the wire portion stretches by `share`.
    ///
    /// In a Model-Replica + PS deployment with `W` workers and `S` servers,
    /// every parameter server fans out to all `W` workers concurrently (and
    /// every worker to all `S` servers), so sustained per-stream bandwidth
    /// is `bandwidth / max(W, S)`.
    ///
    /// # Panics
    ///
    /// Panics if `share < 1`.
    pub fn transfer_time_shared(&self, bytes: u64, share: f64) -> SimDuration {
        assert!(share >= 1.0, "share must be at least 1");
        self.transfer_time_scaled(bytes, share)
    }

    /// Wire time for a `bytes`-byte transfer whose wire portion is
    /// stretched by an arbitrary positive factor.
    ///
    /// This is [`transfer_time_shared`](Self::transfer_time_shared)
    /// without the fair-share lower bound: heterogeneous links compose a
    /// per-channel bandwidth factor into the share, and a link faster than
    /// the platform reference yields an effective factor below `1.0`. The
    /// float expression is identical to the shared path, so a factor of
    /// exactly `1.0` is bit-for-bit the uniform result.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    pub fn transfer_time_scaled(&self, bytes: u64, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor > 0.0,
            "transfer factor must be positive and finite, got {factor}"
        );
        self.latency + SimDuration::from_secs_f64(bytes as f64 * factor / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_balance() {
        let g = Platform::cloud_gpu();
        let c = Platform::cpu_cluster();
        // GPU workers are much faster than CPU workers.
        assert!(g.worker_flops() > 10.0 * c.worker_flops());
        // envC network is 10x slower.
        assert!(g.bandwidth() > 9.0 * c.bandwidth());
        assert_eq!(g.name(), "envG");
        assert_eq!(c.name(), "envC");
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let p = Platform::cpu_cluster();
        let t1 = p.transfer_time(1 << 20);
        let t8 = p.transfer_time(8 << 20);
        // 8x the bytes is ~8x the wire time, modulo the fixed latency.
        let wire1 = t1 - p.latency();
        let wire8 = t8 - p.latency();
        assert_eq!(wire8.as_nanos(), 8 * wire1.as_nanos());
        // 1 MiB at 125 MB/s is ~8.4 ms.
        assert!((wire1.as_secs_f64() - (1 << 20) as f64 / p.bandwidth()).abs() < 1e-9);
    }

    #[test]
    fn compute_time_includes_overhead() {
        let p = Platform::cloud_gpu();
        assert_eq!(p.worker_compute_time(0.0), p.op_overhead());
        // 1 ms of work at the platform's sustained throughput.
        let t = p.worker_compute_time(p.worker_flops() * 1e-3);
        assert_eq!(t, p.op_overhead() + SimDuration::from_millis(1));
    }

    #[test]
    fn bandwidth_factor_scales() {
        let p = Platform::cpu_cluster().with_bandwidth_factor(2.0);
        assert_eq!(p.bandwidth(), Platform::cpu_cluster().bandwidth() * 2.0);
        assert!(p.name().contains("x2"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_bandwidth() {
        Platform::new("bad", 1.0, 1.0, 0.0, SimDuration::ZERO, SimDuration::ZERO);
    }
}
