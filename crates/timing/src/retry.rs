//! Timeout and exponential-backoff arithmetic for fault-tolerant
//! transfers.
//!
//! The simulator's recovery machinery (tictac-sim's `faults` module) needs
//! a deterministic answer to "when does the sender give up waiting for an
//! ack, and how long until the next attempt may time out?". This module
//! keeps all of that arithmetic on [`SimDuration`] so retransmit schedules
//! are exactly reproducible across platforms.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-transfer timeout/retransmit policy: a base detection timeout, an
/// exponential backoff multiplier, and a bounded retry budget.
///
/// Attempt `k` (zero-based) of a transfer is declared lost
/// `timeout_for(k)` after it starts; attempts `0..=max_retries` are made
/// before the transfer is abandoned (deferred to the degraded barrier or
/// surfaced as an error).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Loss-detection timeout of the first attempt.
    pub timeout: SimDuration,
    /// Backoff multiplier applied per retry (`>= 1`).
    pub backoff: f64,
    /// Number of retransmits allowed after the initial attempt.
    pub max_retries: u32,
}

impl RetryPolicy {
    /// A gRPC-flavoured default: 50 ms detection timeout, 2x backoff,
    /// 4 retransmits (within an order of magnitude of gRPC's deadline and
    /// reconnect-backoff defaults, scaled to simulated iteration times).
    pub fn grpc_default() -> Self {
        Self {
            timeout: SimDuration::from_millis(50),
            backoff: 2.0,
            max_retries: 4,
        }
    }

    /// A policy that detects losses after `timeout` with no backoff
    /// growth.
    pub fn fixed(timeout: SimDuration, max_retries: u32) -> Self {
        Self {
            timeout,
            backoff: 1.0,
            max_retries,
        }
    }

    /// Overrides the backoff multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `backoff < 1`.
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        assert!(backoff >= 1.0, "backoff must be at least 1");
        self.backoff = backoff;
        self
    }

    /// The loss-detection timeout of zero-based attempt `attempt`:
    /// `timeout * backoff^attempt`, saturating at the representable
    /// maximum.
    pub fn timeout_for(&self, attempt: u32) -> SimDuration {
        let factor = self.backoff.powi(attempt.min(64) as i32);
        self.timeout.saturating_mul_f64(factor)
    }

    /// Whether zero-based attempt `attempt` is within budget (the initial
    /// send plus `max_retries` retransmits).
    pub fn attempt_allowed(&self, attempt: u32) -> bool {
        attempt <= self.max_retries
    }

    /// Worst-case time spent on one transfer before giving up: the sum of
    /// every allowed attempt's timeout.
    pub fn total_budget(&self) -> SimDuration {
        (0..=self.max_retries)
            .map(|k| self.timeout_for(k))
            .fold(SimDuration::ZERO, SimDuration::saturating_add)
    }

    /// [`RetryPolicy::timeout_for`] mapped onto the wall clock: the real
    /// time a wall-clock runtime arms its loss-detection timer for, with
    /// model time scaled by `time_scale` (the threaded runtime's modeled
    /// duration multiplier).
    pub fn wall_timeout_for(&self, attempt: u32, time_scale: f64) -> std::time::Duration {
        std::time::Duration::from_nanos(self.timeout_for(attempt).mul_f64(time_scale).as_nanos())
    }

    /// [`RetryPolicy::total_budget`] mapped onto the wall clock at
    /// `time_scale`: an upper bound on the real time one transfer may
    /// spend in retransmission before it is abandoned. Useful for sizing
    /// watchdog budgets around a fault spec.
    pub fn wall_total_budget(&self, time_scale: f64) -> std::time::Duration {
        std::time::Duration::from_nanos(self.total_budget().mul_f64(time_scale).as_nanos())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::grpc_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::fixed(SimDuration::from_millis(10), 3).with_backoff(2.0);
        assert_eq!(p.timeout_for(0), SimDuration::from_millis(10));
        assert_eq!(p.timeout_for(1), SimDuration::from_millis(20));
        assert_eq!(p.timeout_for(3), SimDuration::from_millis(80));
        assert_eq!(p.total_budget(), SimDuration::from_millis(150));
    }

    #[test]
    fn fixed_policy_does_not_grow() {
        let p = RetryPolicy::fixed(SimDuration::from_millis(5), 2);
        assert_eq!(p.timeout_for(4), SimDuration::from_millis(5));
        assert_eq!(p.total_budget(), SimDuration::from_millis(15));
    }

    #[test]
    fn budget_counts_initial_attempt() {
        let p = RetryPolicy::fixed(SimDuration::from_millis(1), 0);
        assert!(p.attempt_allowed(0));
        assert!(!p.attempt_allowed(1));
        assert_eq!(p.total_budget(), SimDuration::from_millis(1));
    }

    #[test]
    fn huge_backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy::fixed(SimDuration::from_secs_f64(1.0), 80).with_backoff(10.0);
        let t = p.timeout_for(80);
        assert_eq!(t, SimDuration::from_nanos(u64::MAX));
        assert_eq!(p.total_budget(), SimDuration::from_nanos(u64::MAX));
    }

    #[test]
    fn wall_clock_mapping_scales_model_time() {
        let p = RetryPolicy::fixed(SimDuration::from_millis(10), 2).with_backoff(2.0);
        assert_eq!(
            p.wall_timeout_for(1, 0.5),
            std::time::Duration::from_millis(10)
        );
        assert_eq!(
            p.wall_total_budget(1.0),
            std::time::Duration::from_millis(70)
        );
    }

    #[test]
    #[should_panic(expected = "backoff")]
    fn rejects_shrinking_backoff() {
        RetryPolicy::grpc_default().with_backoff(0.5);
    }
}
