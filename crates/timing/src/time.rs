//! Nanosecond-resolution virtual time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in nanoseconds.
///
/// All simulator and oracle arithmetic is integral to keep results exactly
/// reproducible across platforms.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from seconds (fractional allowed).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid seconds {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies by a non-negative float factor, saturating at the
    /// representable maximum instead of overflowing (used by exponential
    /// backoff, where late attempts can exceed any iteration horizon).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `factor` is negative or NaN.
    pub fn saturating_mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(!factor.is_nan() && factor >= 0.0, "invalid factor");
        let product = self.0 as f64 * factor;
        if product >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(product.round() as u64)
        }
    }

    /// Multiplies by a non-negative float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant of virtual time (nanoseconds since iteration start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The time origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (debug builds overflow
    /// check).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimDuration::from_nanos(500).as_secs_f64() - 5e-7).abs() < 1e-15);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.mul_f64(2.5).as_nanos(), 250);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: SimDuration = [a, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 140);
    }

    #[test]
    fn time_and_duration_interact() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1.as_nanos(), 5_000_000);
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
        assert_eq!(t1.duration_since(t0).as_millis_f64(), 5.0);
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs_f64(1.25).to_string(), "1.250s");
        assert_eq!(SimTime::from_nanos(1_000).to_string(), "t+1.000us");
    }
}
