//! Execution traces and the time-oracle estimator.
//!
//! The paper's tracing module (§5) collects per-op runtime statistics from
//! real executions; its time-oracle estimator runs every op five times and
//! keeps the minimum. Here the "real execution" is the discrete-event
//! simulator (`tictac-sim`), which emits an [`ExecutionTrace`] per
//! iteration; [`estimate_profile`] turns a set of warm-up traces into the
//! [`MeasuredProfile`] that feeds TAC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;

pub use metrics::{analyze, straggler_pct, FaultCounters, IterationMetrics};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use tictac_graph::{ChannelId, DeviceId, Graph, OpId};
use tictac_timing::{MeasuredProfile, SimDuration, SimTime};

/// What kind of fault-handling activity a [`FaultEvent`] records.
///
/// Events describe the *observable* behaviour of the fault-tolerance
/// machinery: injected losses, the detection timeouts and retransmits
/// they trigger, availability windows of devices and channels, and the
/// degraded-barrier decisions that close an iteration with work deferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// A transfer attempt was lost on the wire (noticed only at timeout).
    TransferDropped {
        /// The recv op of the transfer.
        op: OpId,
        /// Zero-based attempt number that was lost.
        attempt: u32,
    },
    /// The loss-detection timeout of a transfer attempt fired.
    TransferTimeout {
        /// The recv op of the transfer.
        op: OpId,
        /// Zero-based attempt number that timed out.
        attempt: u32,
    },
    /// The transfer was re-queued for another attempt.
    Retransmit {
        /// The recv op of the transfer.
        op: OpId,
        /// Zero-based number of the new attempt.
        attempt: u32,
    },
    /// A channel became unavailable (network blackout).
    BlackoutStart {
        /// The affected channel.
        channel: ChannelId,
    },
    /// A channel became available again.
    BlackoutEnd {
        /// The affected channel.
        channel: ChannelId,
    },
    /// A worker crashed: its in-flight compute is lost and its channels go
    /// dark until recovery.
    WorkerCrashed {
        /// The crashed worker.
        device: DeviceId,
    },
    /// A crashed worker came back and resumes (re-running lost work).
    WorkerRecovered {
        /// The recovered worker.
        device: DeviceId,
    },
    /// A parameter-server shard stopped making progress (update thread
    /// wedged); in-flight updates finish late.
    PsStallStart {
        /// The stalled parameter server.
        device: DeviceId,
    },
    /// A stalled parameter server resumed.
    PsStallEnd {
        /// The recovered parameter server.
        device: DeviceId,
    },
    /// A persistent straggler slowdown was applied to a worker for the
    /// whole iteration.
    StragglerApplied {
        /// The slowed worker.
        device: DeviceId,
    },
    /// The degraded barrier closed the iteration with this op incomplete;
    /// its effect is deferred to the next iteration.
    DeferredOp {
        /// The deferred op.
        op: OpId,
    },
    /// The degraded barrier fired with work outstanding.
    BarrierDegraded {
        /// Number of ops left incomplete.
        remaining: u32,
    },
}

/// One timestamped fault-handling event within an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the event occurred.
    pub at: SimTime,
    /// What happened.
    pub kind: FaultEventKind,
}

/// When one op executed within an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Start of execution (transfer start for recv ops).
    pub start: SimTime,
    /// End of execution.
    pub end: SimTime,
}

impl OpRecord {
    /// The op's measured duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The execution timeline of one simulated iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    records: Vec<Option<OpRecord>>,
    makespan: SimDuration,
    events: Vec<FaultEvent>,
}

impl ExecutionTrace {
    /// The iteration makespan: the last op completion, or the degraded
    /// barrier's release time if it fired later.
    pub fn makespan(&self) -> SimDuration {
        self.makespan
    }

    /// The fault-handling events of the iteration, in time order (empty
    /// for fault-free runs).
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The record of `op`, if it executed.
    pub fn record(&self, op: OpId) -> Option<OpRecord> {
        self.records.get(op.index()).copied().flatten()
    }

    /// The measured duration of `op` (zero if it did not execute).
    pub fn duration(&self, op: OpId) -> SimDuration {
        self.record(op)
            .map(|r| r.duration())
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of ops that executed.
    pub fn executed_ops(&self) -> usize {
        self.records.iter().flatten().count()
    }

    /// Number of op slots (graph size).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no op executed.
    pub fn is_empty(&self) -> bool {
        self.executed_ops() == 0
    }

    /// The completion time of the last op on `device`, if any executed.
    ///
    /// Used for the straggler analysis (§6.3): a worker's *finish time* is
    /// when its last op completes; the gap to the iteration makespan is the
    /// time it spends waiting for stragglers.
    pub fn device_finish(&self, graph: &Graph, device: DeviceId) -> Option<SimTime> {
        graph
            .ops_on(device)
            .filter_map(|op| self.record(op))
            .map(|r| r.end)
            .max()
    }

    /// The order in which `recv` ops on `device` *completed* — the paper's
    /// "order of received parameters" (§2.2).
    pub fn recv_completion_order(&self, graph: &Graph, device: DeviceId) -> Vec<OpId> {
        let mut recvs: Vec<(SimTime, OpId)> = graph
            .recv_ops_on(device)
            .into_iter()
            .filter_map(|op| self.record(op).map(|r| (r.end, op)))
            .collect();
        recvs.sort_unstable();
        recvs.into_iter().map(|(_, op)| op).collect()
    }

    /// Renders the trace as tab-separated `op\tstart_ns\tend_ns` lines for
    /// offline inspection.
    pub fn to_tsv(&self, graph: &Graph) -> String {
        let mut out = String::from("op\tstart_ns\tend_ns\n");
        for (i, rec) in self.records.iter().enumerate() {
            if let Some(r) = rec {
                let _ = writeln!(
                    out,
                    "{}\t{}\t{}",
                    graph.op_name(OpId::from_index(i)),
                    r.start.as_nanos(),
                    r.end.as_nanos()
                );
            }
        }
        out
    }

    /// Renders the trace in Chrome trace-event JSON (the array format), one
    /// complete (`"ph":"X"`) event per op, grouped so each device is a
    /// process and each resource (compute unit / channel) a thread. Load
    /// the output in `chrome://tracing` or Perfetto.
    ///
    /// Send ops are skipped: their interval duplicates the paired recv's
    /// transfer.
    pub fn to_chrome_json(&self, graph: &Graph) -> String {
        use tictac_graph::Resource;

        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }

        let mut out = String::from("[\n");
        let mut first = true;
        for (i, rec) in self.records.iter().enumerate() {
            let Some(r) = rec else { continue };
            let id = OpId::from_index(i);
            let op = graph.op(id);
            if op.kind().is_send() {
                continue;
            }
            let (pid, tid, cat) = match graph.resource(id) {
                Resource::Compute(d) => (d.index(), 0usize, "compute"),
                Resource::Channel(c) => {
                    let ch = graph.channel(c);
                    (ch.worker().index(), 1 + c.index(), "transfer")
                }
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                escape(graph.op_name(id)),
                cat,
                r.start.as_nanos() / 1_000,
                ((r.end - r.start).as_nanos() / 1_000).max(1),
                pid,
                tid
            );
        }
        out.push_str("\n]\n");
        out
    }
}

/// Incremental construction of an [`ExecutionTrace`] (used by the
/// simulator).
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    records: Vec<Option<OpRecord>>,
    events: Vec<FaultEvent>,
    makespan_floor: SimTime,
}

impl TraceBuilder {
    /// A builder covering `n` ops.
    pub fn new(n: usize) -> Self {
        Self {
            records: vec![None; n],
            events: Vec::new(),
            makespan_floor: SimTime::ZERO,
        }
    }

    /// Records one op execution.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of bounds, was already recorded, or
    /// `end < start`.
    pub fn record(&mut self, op: OpId, start: SimTime, end: SimTime) {
        assert!(end >= start, "op {op} ends before it starts");
        let slot = &mut self.records[op.index()];
        assert!(slot.is_none(), "op {op} recorded twice");
        *slot = Some(OpRecord { start, end });
    }

    /// Whether `op` already has a record (recording it again would
    /// panic).
    pub fn is_recorded(&self, op: OpId) -> bool {
        self.records[op.index()].is_some()
    }

    /// Appends a fault-handling event. Callers push in time order (the
    /// simulator processes events chronologically).
    pub fn push_fault(&mut self, at: SimTime, kind: FaultEventKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Raises the makespan floor: the finished trace's makespan is at
    /// least `at`, even if every recorded op ends earlier (used when a
    /// degraded barrier releases the iteration after the last completion).
    pub fn raise_makespan(&mut self, at: SimTime) {
        self.makespan_floor = self.makespan_floor.max(at);
    }

    /// Finalizes the trace.
    pub fn finish(self) -> ExecutionTrace {
        let makespan = self
            .records
            .iter()
            .flatten()
            .map(|r| r.end)
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.makespan_floor)
            .duration_since(SimTime::ZERO);
        ExecutionTrace {
            records: self.records,
            makespan,
            events: self.events,
        }
    }
}

/// Renders a trace as an ASCII Gantt chart, one row per resource
/// (device compute unit or channel), `width` columns spanning the
/// makespan.
///
/// Busy time is drawn with `#` for compute, `=` for transfers; overlap of
/// communication and computation — the quantity TicTac maximizes — is
/// visible as vertically aligned busy spans.
pub fn gantt(graph: &Graph, trace: &ExecutionTrace, width: usize) -> String {
    use tictac_graph::Resource;

    let span = trace.makespan().as_nanos().max(1);
    let col_of = |t: SimTime| -> usize {
        ((t.as_nanos() as u128 * width as u128) / span as u128).min(width as u128 - 1) as usize
    };

    let mut rows: Vec<(Resource, String, Vec<char>)> = Vec::new();
    for resource in graph.resources() {
        let label = match resource {
            Resource::Compute(d) => format!("{} [compute]", graph.device(d).name()),
            Resource::Channel(c) => {
                let ch = graph.channel(c);
                format!(
                    "{}<->{} [channel]",
                    graph.device(ch.worker()).name(),
                    graph.device(ch.ps()).name()
                )
            }
        };
        rows.push((resource, label, vec![' '; width]));
    }

    for id in graph.op_ids() {
        let Some(rec) = trace.record(id) else {
            continue;
        };
        // Sends share the transfer interval with their recv; draw each
        // transfer once (on the recv) to keep channel rows readable.
        if graph.op(id).kind().is_send() {
            continue;
        }
        let resource = graph.resource(id);
        let glyph = if resource.is_channel() { '=' } else { '#' };
        let (a, b) = (col_of(rec.start), col_of(rec.end));
        if let Some((_, _, cells)) = rows.iter_mut().find(|(r, ..)| *r == resource) {
            for cell in cells.iter_mut().take(b + 1).skip(a) {
                *cell = glyph;
            }
        }
    }

    let label_w = rows.iter().map(|(_, l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (_, label, cells) in &rows {
        let _ = writeln!(
            out,
            "{label:>label_w$} |{}|",
            cells.iter().collect::<String>()
        );
    }
    let _ = writeln!(
        out,
        "{:>label_w$}  0{:>width$}",
        "",
        format!("{}", trace.makespan()),
        width = width - 1
    );
    out
}

/// Builds a [`MeasuredProfile`] from warm-up traces: per op, the **minimum**
/// duration across traces (the paper's 5-run estimator; pass five traces
/// for fidelity).
///
/// # Panics
///
/// Panics if `traces` is empty or trace lengths disagree.
pub fn estimate_profile(traces: &[ExecutionTrace]) -> MeasuredProfile {
    assert!(!traces.is_empty(), "at least one trace required");
    let runs: Vec<Vec<SimDuration>> = traces
        .iter()
        .map(|t| {
            (0..t.len())
                .map(|i| t.duration(OpId::from_index(i)))
                .collect()
        })
        .collect();
    MeasuredProfile::from_runs(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::{Cost, GraphBuilder, OpKind};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_graph() -> (Graph, DeviceId, Vec<OpId>) {
        let mut b = GraphBuilder::new();
        let w = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(w, ps);
        let p1 = b.add_param("p1", 10);
        let p2 = b.add_param("p2", 10);
        let r1 = b.add_op("r1", w, OpKind::recv(p1, ch), Cost::bytes(10), &[]);
        let r2 = b.add_op("r2", w, OpKind::recv(p2, ch), Cost::bytes(10), &[]);
        let c = b.add_op("c", w, OpKind::Compute, Cost::flops(1.0), &[r1, r2]);
        (b.build().unwrap(), w, vec![r1, r2, c])
    }

    #[test]
    fn builder_records_and_computes_makespan() {
        let (g, _, ops) = sample_graph();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(100));
        tb.record(ops[1], t(100), t(250));
        tb.record(ops[2], t(250), t(400));
        let trace = tb.finish();
        assert_eq!(trace.makespan(), SimDuration::from_nanos(400));
        assert_eq!(trace.duration(ops[1]), SimDuration::from_nanos(150));
        assert_eq!(trace.executed_ops(), 3);
        assert!(!trace.is_empty());
    }

    #[test]
    fn recv_completion_order_sorts_by_end_time() {
        let (g, w, ops) = sample_graph();
        let mut tb = TraceBuilder::new(g.len());
        // r2 completes before r1.
        tb.record(ops[0], t(0), t(300));
        tb.record(ops[1], t(0), t(100));
        tb.record(ops[2], t(300), t(350));
        let trace = tb.finish();
        assert_eq!(trace.recv_completion_order(&g, w), vec![ops[1], ops[0]]);
        assert_eq!(trace.device_finish(&g, w), Some(t(350)));
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn double_record_panics() {
        let (g, _, ops) = sample_graph();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(1));
        tb.record(ops[0], t(1), t(2));
    }

    #[test]
    fn profile_estimation_takes_minimum() {
        let (g, _, ops) = sample_graph();
        let mk = |d0: u64, d1: u64, d2: u64| {
            let mut tb = TraceBuilder::new(g.len());
            tb.record(ops[0], t(0), t(d0));
            tb.record(ops[1], t(d0), t(d0 + d1));
            tb.record(ops[2], t(d0 + d1), t(d0 + d1 + d2));
            tb.finish()
        };
        let profile = estimate_profile(&[mk(100, 200, 50), mk(80, 250, 60), mk(90, 210, 40)]);
        assert_eq!(profile.get(ops[0]), SimDuration::from_nanos(80));
        assert_eq!(profile.get(ops[1]), SimDuration::from_nanos(200));
        assert_eq!(profile.get(ops[2]), SimDuration::from_nanos(40));
    }

    #[test]
    fn tsv_export_contains_names() {
        let (g, _, ops) = sample_graph();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(5));
        let tsv = tb.finish().to_tsv(&g);
        assert!(tsv.contains("r1\t0\t5"));
        assert!(!tsv.contains("r2\t"));
    }

    #[test]
    fn empty_trace_has_zero_makespan() {
        let trace = TraceBuilder::new(3).finish();
        assert_eq!(trace.makespan(), SimDuration::ZERO);
        assert!(trace.is_empty());
        assert!(trace.fault_events().is_empty());
    }

    #[test]
    fn fault_events_and_makespan_floor_are_kept() {
        let (g, _, ops) = sample_graph();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(100));
        tb.push_fault(
            t(40),
            FaultEventKind::TransferDropped {
                op: ops[1],
                attempt: 0,
            },
        );
        tb.push_fault(t(90), FaultEventKind::DeferredOp { op: ops[1] });
        tb.raise_makespan(t(500));
        let trace = tb.finish();
        assert_eq!(trace.makespan(), SimDuration::from_nanos(500));
        assert_eq!(trace.fault_events().len(), 2);
        assert_eq!(trace.fault_events()[0].at, t(40));
        // The floor never lowers a later completion.
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(900));
        tb.raise_makespan(t(500));
        assert_eq!(tb.finish().makespan(), SimDuration::from_nanos(900));
    }

    #[test]
    fn chrome_json_emits_complete_events() {
        let (g, _, ops) = sample_graph();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(5_000));
        tb.record(ops[2], t(5_000), t(9_000));
        let json = tb.finish().to_chrome_json(&g);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"transfer\""));
        assert!(json.contains("\"cat\":\"compute\""));
        assert!(json.contains("\"name\":\"r1\""));
        // Two events, separated by exactly one comma line.
        assert_eq!(json.matches("\"ph\"").count(), 2);
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn gantt_draws_rows_per_resource() {
        let (g, _, ops) = sample_graph();
        let mut tb = TraceBuilder::new(g.len());
        tb.record(ops[0], t(0), t(100));
        tb.record(ops[1], t(100), t(200));
        tb.record(ops[2], t(200), t(400));
        let chart = gantt(&g, &tb.finish(), 40);
        // One worker compute row and one channel row (the PS has no ops in
        // this sample graph), plus the axis line.
        assert_eq!(chart.lines().count(), 3);
        assert!(chart.contains("[channel]"));
        assert!(chart.contains("[compute]"));
        assert!(chart.contains('='), "transfers drawn");
        assert!(chart.contains('#'), "compute drawn");
    }
}
