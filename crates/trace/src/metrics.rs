//! Per-iteration metrics derived from execution traces.
//!
//! These are trace-level summaries: they depend only on the graph, the
//! timing primitives and the [`ExecutionTrace`] itself, so any execution
//! backend (the discrete-event simulator or the threaded runtime) can be
//! analyzed with them.

use serde::{Deserialize, Serialize};
use tictac_graph::{DeviceId, Graph};
use tictac_timing::{SimDuration, SimTime};

use crate::{ExecutionTrace, FaultEvent, FaultEventKind};

/// Tallies of fault and recovery activity in one or more iterations,
/// derived from the [`FaultEvent`] stream of a trace. All-zero for a
/// fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transfer attempts lost on the wire (initial sends and retransmits).
    pub drops: u64,
    /// Loss-detection timeouts that fired.
    pub timeouts: u64,
    /// Retransmits issued after a timeout.
    pub retransmits: u64,
    /// Channel blackouts that started.
    pub blackouts: u64,
    /// Worker crashes that started.
    pub crashes: u64,
    /// Parameter-server stalls that started.
    pub ps_stalls: u64,
    /// Persistent stragglers applied this iteration.
    pub stragglers: u64,
    /// Ops left incomplete when a degraded barrier released the iteration.
    pub deferred_ops: u64,
    /// Iterations released by a degraded barrier with work outstanding.
    pub degraded_barriers: u64,
}

impl FaultCounters {
    /// Tallies the fault events of one trace.
    pub fn from_trace(trace: &ExecutionTrace) -> Self {
        Self::from_events(trace.fault_events())
    }

    /// Tallies a raw fault-event stream.
    pub fn from_events(events: &[FaultEvent]) -> Self {
        let mut c = Self::default();
        for e in events {
            match e.kind {
                FaultEventKind::TransferDropped { .. } => c.drops += 1,
                FaultEventKind::TransferTimeout { .. } => c.timeouts += 1,
                FaultEventKind::Retransmit { .. } => c.retransmits += 1,
                FaultEventKind::BlackoutStart { .. } => c.blackouts += 1,
                FaultEventKind::WorkerCrashed { .. } => c.crashes += 1,
                FaultEventKind::PsStallStart { .. } => c.ps_stalls += 1,
                FaultEventKind::StragglerApplied { .. } => c.stragglers += 1,
                FaultEventKind::DeferredOp { .. } => c.deferred_ops += 1,
                FaultEventKind::BarrierDegraded { .. } => c.degraded_barriers += 1,
                FaultEventKind::BlackoutEnd { .. }
                | FaultEventKind::WorkerRecovered { .. }
                | FaultEventKind::PsStallEnd { .. } => {}
            }
        }
        c
    }

    /// Tallies fault events by *name* — the `FaultEventKind` variant
    /// names, exactly as the Perfetto exporter emits them as
    /// `cat:"fault"` instants. Unknown names are ignored, and the
    /// End/Recovered variants do not increment, mirroring
    /// [`from_events`](Self::from_events); counters rebuilt from an
    /// exported trace therefore equal the trace-derived ones.
    pub fn from_event_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        let mut c = Self::default();
        for name in names {
            match name {
                "TransferDropped" => c.drops += 1,
                "TransferTimeout" => c.timeouts += 1,
                "Retransmit" => c.retransmits += 1,
                "BlackoutStart" => c.blackouts += 1,
                "WorkerCrashed" => c.crashes += 1,
                "PsStallStart" => c.ps_stalls += 1,
                "StragglerApplied" => c.stragglers += 1,
                "DeferredOp" => c.deferred_ops += 1,
                "BarrierDegraded" => c.degraded_barriers += 1,
                _ => {}
            }
        }
        c
    }

    /// `true` when nothing fault-related happened.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }

    /// Accumulates another iteration's counters into this one.
    pub fn merge(&mut self, other: &Self) {
        self.drops += other.drops;
        self.timeouts += other.timeouts;
        self.retransmits += other.retransmits;
        self.blackouts += other.blackouts;
        self.crashes += other.crashes;
        self.ps_stalls += other.ps_stalls;
        self.stragglers += other.stragglers;
        self.deferred_ops += other.deferred_ops;
        self.degraded_barriers += other.degraded_barriers;
    }

    /// The counters as one JSON object (stable key order), for report
    /// files and log lines. Hand-rolled — the values are plain `u64`s, so
    /// no serializer dependency is warranted.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"drops\":{},\"timeouts\":{},\"retransmits\":{},\"blackouts\":{},\
             \"crashes\":{},\"ps_stalls\":{},\"stragglers\":{},\"deferred_ops\":{},\
             \"degraded_barriers\":{}}}",
            self.drops,
            self.timeouts,
            self.retransmits,
            self.blackouts,
            self.crashes,
            self.ps_stalls,
            self.stragglers,
            self.deferred_ops,
            self.degraded_barriers
        )
    }
}

impl std::fmt::Display for FaultCounters {
    /// Compact human summary: only non-zero classes are listed, and a
    /// clean run prints `clean`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut sep = "";
        let mut item = |f: &mut std::fmt::Formatter<'_>, name: &str, v: u64| {
            if v > 0 {
                let r = write!(f, "{sep}{name} {v}");
                sep = " ";
                r
            } else {
                Ok(())
            }
        };
        item(f, "drops", self.drops)?;
        item(f, "timeouts", self.timeouts)?;
        item(f, "rexmits", self.retransmits)?;
        item(f, "blackouts", self.blackouts)?;
        item(f, "crashes", self.crashes)?;
        item(f, "ps_stalls", self.ps_stalls)?;
        item(f, "stragglers", self.stragglers)?;
        item(f, "deferred", self.deferred_ops)?;
        item(f, "degraded", self.degraded_barriers)
    }
}

/// Summary of one executed iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationMetrics {
    /// The iteration makespan (all ops, including the PS update tail; for
    /// a degraded iteration, the barrier release time).
    pub makespan: SimDuration,
    /// Per-worker finish times (completion of the worker's last op), in
    /// worker order.
    pub worker_finish: Vec<SimTime>,
    /// Straggler time as a percentage of the iteration (§6.3): the longest
    /// any worker waited for the slowest worker, over the makespan.
    pub straggler_pct: f64,
    /// Fault and recovery activity observed this iteration.
    pub faults: FaultCounters,
    /// Percentage of the graph's ops that actually executed — below 100
    /// only when a degraded barrier deferred work.
    pub goodput_pct: f64,
}

impl IterationMetrics {
    /// Throughput in samples/second for a global batch of
    /// `batch_per_worker × workers`.
    pub fn throughput(&self, batch_per_worker: usize, workers: usize) -> f64 {
        (batch_per_worker * workers) as f64 / self.makespan.as_secs_f64()
    }
}

/// Computes the straggler percentage from per-worker finish times and the
/// iteration makespan: `max_w (barrier − finish_w) / makespan × 100`, where
/// the barrier is the slowest worker's finish.
pub fn straggler_pct(worker_finish: &[SimTime], makespan: SimDuration) -> f64 {
    if worker_finish.len() < 2 || makespan.is_zero() {
        return 0.0;
    }
    let barrier = worker_finish
        .iter()
        .copied()
        .max()
        .expect("non-empty worker list");
    let max_wait = worker_finish
        .iter()
        .map(|&f| barrier - f)
        .max()
        .expect("non-empty worker list");
    100.0 * max_wait.as_secs_f64() / makespan.as_secs_f64()
}

/// Derives iteration metrics from a trace.
///
/// `workers` are the worker devices, in worker-index order.
pub fn analyze(graph: &Graph, workers: &[DeviceId], trace: &ExecutionTrace) -> IterationMetrics {
    let worker_finish: Vec<SimTime> = workers
        .iter()
        .map(|&w| trace.device_finish(graph, w).unwrap_or(SimTime::ZERO))
        .collect();
    let goodput_pct = if graph.is_empty() {
        100.0
    } else {
        100.0 * trace.executed_ops() as f64 / graph.len() as f64
    };
    IterationMetrics {
        makespan: trace.makespan(),
        straggler_pct: straggler_pct(&worker_finish, trace.makespan()),
        worker_finish,
        faults: FaultCounters::from_trace(trace),
        goodput_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tictac_graph::OpId;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn straggler_math() {
        let makespan = SimDuration::from_nanos(1000);
        // Fastest finishes at 400, slowest at 900: wait = 500 = 50%.
        assert_eq!(straggler_pct(&[t(900), t(400)], makespan), 50.0);
        // Identical workers: no straggling.
        assert_eq!(straggler_pct(&[t(700), t(700)], makespan), 0.0);
        // Single worker: straggling undefined, reported as zero.
        assert_eq!(straggler_pct(&[t(900)], makespan), 0.0);
    }

    #[test]
    fn counters_tally_fault_events() {
        let op = OpId::from_index(0);
        let at = t(10);
        let events = [
            FaultEvent {
                at,
                kind: FaultEventKind::TransferDropped { op, attempt: 0 },
            },
            FaultEvent {
                at,
                kind: FaultEventKind::TransferTimeout { op, attempt: 0 },
            },
            FaultEvent {
                at,
                kind: FaultEventKind::Retransmit { op, attempt: 1 },
            },
            FaultEvent {
                at,
                kind: FaultEventKind::DeferredOp { op },
            },
            FaultEvent {
                at,
                kind: FaultEventKind::BarrierDegraded { remaining: 1 },
            },
        ];
        let c = FaultCounters::from_events(&events);
        assert_eq!(c.drops, 1);
        assert_eq!(c.timeouts, 1);
        assert_eq!(c.retransmits, 1);
        assert_eq!(c.deferred_ops, 1);
        assert_eq!(c.degraded_barriers, 1);
        assert!(!c.is_clean());
        let mut total = FaultCounters::default();
        total.merge(&c);
        total.merge(&c);
        assert_eq!(total.drops, 2);
        assert_eq!(total.degraded_barriers, 2);
    }

    #[test]
    fn counters_render_as_text_and_json() {
        assert_eq!(FaultCounters::default().to_string(), "clean");
        let c = FaultCounters {
            drops: 3,
            timeouts: 3,
            retransmits: 2,
            blackouts: 0,
            crashes: 1,
            ps_stalls: 0,
            stragglers: 0,
            deferred_ops: 4,
            degraded_barriers: 1,
        };
        assert_eq!(
            c.to_string(),
            "drops 3 timeouts 3 rexmits 2 crashes 1 deferred 4 degraded 1"
        );
        assert_eq!(
            c.to_json(),
            "{\"drops\":3,\"timeouts\":3,\"retransmits\":2,\"blackouts\":0,\
             \"crashes\":1,\"ps_stalls\":0,\"stragglers\":0,\"deferred_ops\":4,\
             \"degraded_barriers\":1}"
        );
    }
}
