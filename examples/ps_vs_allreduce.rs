//! The paper's future-work question (§7): how does a scheduled Parameter
//! Server compare to decentralized ring all-reduce? Build both
//! deployments of the same model and race them.
//!
//! ```text
//! cargo run --release --example ps_vs_allreduce [model] [workers]
//! ```

use tictac::{
    deploy_all_reduce, no_ordering, simulate, ClusterSpec, Mode, Model, SchedulerKind, Session,
    SimConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let model = args
        .next()
        .and_then(|name| Model::from_name(&name))
        .unwrap_or(Model::ResNet50V1);
    let workers: usize = args.next().and_then(|n| n.parse().ok()).unwrap_or(8);
    let ps = (workers / 4).max(1);
    let config = SimConfig::cloud_gpu();
    let graph = model.build(Mode::Training);
    let batch = graph.batch_size();

    println!(
        "{} training, {workers} workers (PS variant: {ps} server{})\n",
        model.name(),
        if ps == 1 { "" } else { "s" }
    );

    let mut ps_tic = 0.0;
    for scheduler in [SchedulerKind::Baseline, SchedulerKind::Tic] {
        let report = Session::builder(graph.clone())
            .cluster(ClusterSpec::new(workers, ps))
            .config(config.clone())
            .scheduler(scheduler)
            .iterations(10)
            .build()?
            .run();
        if scheduler == SchedulerKind::Tic {
            ps_tic = report.mean_throughput();
        }
        println!(
            "parameter server / {:<8}  {:>8.1} samples/s",
            scheduler.to_string(),
            report.mean_throughput()
        );
    }

    let ring = deploy_all_reduce(&graph, workers)?;
    let unordered = no_ordering(ring.graph());
    let mut total = 0.0;
    let iters = 10;
    for i in 0..iters {
        total += simulate(ring.graph(), &unordered, &config, i)
            .makespan()
            .as_secs_f64();
    }
    let ring_tput = (batch * workers) as f64 / (total / iters as f64);
    println!("ring all-reduce             {ring_tput:>8.1} samples/s");
    println!(
        "\nPS+TIC achieves {:.1}% of the ring's throughput ({} gradient buckets, {} ring ops)",
        100.0 * ps_tic / ring_tput,
        ring.buckets().len(),
        ring.graph().len(),
    );
    Ok(())
}
