//! Quickstart: deploy a model on a simulated PS cluster and compare the
//! baseline against TicTac's schedulers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tictac::{ClusterSpec, Mode, Model, SchedulerKind, Session, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ResNet-50 v1, synchronous training, Table-1 batch size.
    let model = Model::ResNet50V1.build(Mode::Training);
    println!(
        "model: {} ({} parameters, {:.1} MiB, {} ops)",
        model.name(),
        model.params().len(),
        model.stats().param_mib(),
        model.stats().ops
    );

    // 4 workers pulling from 1 parameter server on the cloud-GPU platform.
    let mut baseline_throughput = 0.0;
    for scheduler in [
        SchedulerKind::Baseline,
        SchedulerKind::Random,
        SchedulerKind::Tic,
        SchedulerKind::Tac,
    ] {
        let report = Session::builder(model.clone())
            .cluster(ClusterSpec::new(4, 1))
            .config(SimConfig::cloud_gpu())
            .scheduler(scheduler)
            .iterations(10)
            .build()?
            .run();
        let throughput = report.mean_throughput();
        if scheduler == SchedulerKind::Baseline {
            baseline_throughput = throughput;
        }
        println!(
            "{:>8}: {:>7.1} samples/s ({:+.1}%)  iteration {}  efficiency {:.3}  straggler {:.1}%",
            scheduler.to_string(),
            throughput,
            (throughput / baseline_throughput - 1.0) * 100.0,
            report.mean_makespan(),
            report.mean_efficiency(),
            report.max_straggler_pct(),
        );
    }
    Ok(())
}
