//! The reinforcement-learning serving scenario of Figure 3 of the paper:
//! inference agents repeatedly read fresh parameters from the parameter
//! servers and run a forward pass. Enforced transfer ordering cuts both
//! the mean read-to-act latency and its tail.
//!
//! ```text
//! cargo run --release --example rl_inference [model]
//! ```

use tictac::{Cdf, ClusterSpec, Mode, Model, SchedulerKind, Session, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = std::env::args()
        .nth(1)
        .and_then(|name| Model::from_name(&name))
        .unwrap_or(Model::InceptionV3);

    println!(
        "RL inference agents: {} reading from 2 PS shards\n",
        model.name()
    );
    let graph = model.build(Mode::Inference);

    let mut rows = Vec::new();
    for scheduler in [SchedulerKind::Baseline, SchedulerKind::Tic] {
        let session = Session::builder(graph.clone())
            .cluster(ClusterSpec::new(8, 2))
            .config(SimConfig::cloud_gpu())
            .scheduler(scheduler)
            .warmup(2)
            .iterations(50)
            .build()?;
        let report = session.run();
        let latencies_ms: Vec<f64> = report
            .iterations
            .iter()
            .map(|r| r.makespan.as_millis_f64())
            .collect();
        let cdf = Cdf::from_samples(&latencies_ms);
        rows.push((scheduler, report.mean_throughput(), cdf));
    }

    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "scheduler", "samples/s", "p50 (ms)", "p95 (ms)", "p99 (ms)"
    );
    for (scheduler, throughput, cdf) in &rows {
        println!(
            "{:<10} {:>12.1} {:>10.2} {:>10.2} {:>10.2}",
            scheduler.to_string(),
            throughput,
            cdf.quantile(0.50),
            cdf.quantile(0.95),
            cdf.quantile(0.99),
        );
    }

    let (_, base_tput, base_cdf) = &rows[0];
    let (_, tic_tput, tic_cdf) = &rows[1];
    println!(
        "\nTIC: {:+.1}% agent throughput, p99 action latency {:.2} -> {:.2} ms",
        (tic_tput / base_tput - 1.0) * 100.0,
        base_cdf.quantile(0.99),
        tic_cdf.quantile(0.99),
    );
    Ok(())
}
