//! Inspect the transfer schedules TIC and TAC derive for a model: which
//! parameters go first, and the Algorithm-1 properties (P, M, M⁺) behind
//! the decisions.
//!
//! ```text
//! cargo run --release --example schedule_inspector -- [model] [n] [op-name]
//! ```
//!
//! Arguments (all optional, positional):
//!
//! * `model` — zoo model name (default `inception_v1`);
//! * `n` — how many leading TAC transfers to print (default 15);
//! * `op-name` — a deployed op name (e.g. a `recv/...` transfer): reports
//!   where that transfer lands in the TAC order (name lookup is O(1) via
//!   the graph's name index), then simulates one enforced TAC iteration
//!   and prints the overlap and priority-inversion report for the op's
//!   channel.

use tictac::{
    deploy, estimate_profile, no_ordering, overlap_report, priority_inversions, simulate,
    tac_order, tic, ClusterSpec, Mode, Model, OpProperties, PartitionGraph, Schedule, SimConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let model = args
        .next()
        .and_then(|name| Model::from_name(&name))
        .unwrap_or(Model::InceptionV1);
    let show: usize = args.next().and_then(|n| n.parse().ok()).unwrap_or(15);

    let graph = model.build(Mode::Training);
    let deployed = deploy(&graph, &ClusterSpec::new(2, 1))?;
    let g = deployed.graph();
    let worker = deployed.workers()[0];
    let config = SimConfig::cloud_gpu();

    // TAC needs the traced min-of-5 profile (§5 of the paper).
    let unordered = no_ordering(g);
    let traces: Vec<_> = (0..5)
        .map(|i| simulate(g, &unordered, &config, i))
        .collect();
    let profile = estimate_profile(&traces);

    // Initial Algorithm-1 properties, for the "why" column.
    let partition = PartitionGraph::new(g, worker);
    let durations = partition.durations(g, &profile);
    let props = OpProperties::new(&partition, durations);
    let bit_of = |op| {
        partition
            .recv_ids()
            .iter()
            .position(|&r| r == op)
            .expect("op is a recv of this worker")
    };

    let tac_seq = tac_order(g, worker, &profile);
    println!(
        "{}: first {show} transfers under TAC (of {})\n",
        model.name(),
        tac_seq.len()
    );
    println!(
        "{:<4} {:<42} {:>10} {:>10} {:>10}",
        "#", "parameter", "M", "P", "M+"
    );
    for (rank, &recv) in tac_seq.iter().take(show).enumerate() {
        let bit = bit_of(recv);
        println!(
            "{:<4} {:<42} {:>10} {:>10} {:>10}",
            rank,
            g.op_name(recv),
            props.recv_time(&partition, bit).to_string(),
            props.p(bit).to_string(),
            props
                .m_plus(bit)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "inf".into()),
        );
    }

    // Optional focus op: where does one named transfer land?
    if let Some(name) = args.next() {
        match g.find_op(&name) {
            Some(op) => match tac_seq.iter().position(|&o| o == op) {
                Some(rank) => {
                    let bit = bit_of(op);
                    println!(
                        "\n{name}: TAC rank {rank}/{} (M {} | P {} | M+ {})",
                        tac_seq.len(),
                        props.recv_time(&partition, bit),
                        props.p(bit),
                        props
                            .m_plus(bit)
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "inf".into()),
                    );
                }
                None => println!("\n{name}: not a scheduled transfer of worker 0"),
            },
            None => println!("\nno op named {name:?} in the deployed graph"),
        }

        // Overlap and inversion report for the op's channel, observed on
        // one enforced TAC iteration.
        if let Some(ch) = g.find_op(&name).and_then(|op| g.op(op).kind().channel()) {
            let mut tac_schedule = Schedule::empty(g.len());
            for (rank, &op) in tac_seq.iter().enumerate() {
                tac_schedule.set(op, rank as u64);
            }
            let tac_schedule = deployed.replicate_schedule(&tac_schedule);
            let trace = simulate(g, &tac_schedule, &config, 0);
            let report = overlap_report(g, &trace);
            let usage = report
                .channel(ch)
                .expect("transfer channels appear in the trace");
            let inversions = priority_inversions(g, &trace, |op| tac_schedule.priority(op));
            println!(
                "\nchannel ch{} under enforced TAC (iteration 0):\n\
                 \x20 busy {} | idle {} | {:.1}% utilized | {} transfers | {} bytes\n\
                 \x20 priority inversions: {} on this channel, {} trace-wide\n\
                 \x20 comm/compute overlap across the trace: {:.1}%",
                ch.index(),
                usage.busy,
                usage.idle,
                100.0 * usage.utilization(report.makespan),
                usage.transfers,
                usage.bytes,
                inversions.on_channel(ch),
                inversions.count(),
                100.0 * report.overlap_frac(),
            );
        }
    }

    // How much does TIC agree with TAC?
    let tic_schedule = tic(g, worker);
    let mut tic_seq: Vec<_> = tac_seq.clone();
    tic_seq.sort_by_key(|&op| (tic_schedule.priority(op), op));
    let agree = tac_seq.iter().zip(&tic_seq).filter(|(a, b)| a == b).count();
    println!(
        "\nTIC assigns {} distinct priority levels; its order agrees with TAC on {}/{} positions.",
        {
            let mut levels: Vec<_> = tac_seq
                .iter()
                .filter_map(|&op| tic_schedule.priority(op))
                .collect();
            levels.sort_unstable();
            levels.dedup();
            levels.len()
        },
        agree,
        tac_seq.len()
    );
    println!(
        "(the paper finds TIC's DAG-only priorities are near-optimal for today's models — Fig. 13)"
    );
    Ok(())
}
