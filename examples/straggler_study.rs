//! Straggler analysis (§6.3 of the paper): without enforced ordering,
//! workers follow different random transfer schedules and the slowest
//! schedule drags the synchronous barrier; enforcing *any* consistent
//! order helps, and TicTac's orders help most.
//!
//! ```text
//! cargo run --release --example straggler_study
//! ```

use tictac::{ClusterSpec, Mode, Model, SchedulerKind, Session, SimConfig, Summary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = Model::ResNet50V2.build(Mode::Training);
    println!(
        "straggler study: {} training, 8 workers / 2 PS, 40 iterations per policy\n",
        model.name()
    );

    println!(
        "{:<10} {:>14} {:>16} {:>16} {:>12}",
        "scheduler", "samples/s", "straggler mean%", "straggler max%", "step CV"
    );
    for scheduler in [
        SchedulerKind::Baseline,
        SchedulerKind::Random,
        SchedulerKind::Tic,
        SchedulerKind::Tac,
    ] {
        let report = Session::builder(model.clone())
            .cluster(ClusterSpec::new(8, 2))
            .config(SimConfig::cloud_gpu())
            .scheduler(scheduler)
            .iterations(40)
            .build()?
            .run();
        let stragglers: Vec<f64> = report.iterations.iter().map(|r| r.straggler_pct).collect();
        let steps: Vec<f64> = report
            .iterations
            .iter()
            .map(|r| r.makespan.as_secs_f64())
            .collect();
        let straggler_summary = Summary::of(&stragglers);
        println!(
            "{:<10} {:>14.1} {:>16.1} {:>16.1} {:>12.3}",
            scheduler.to_string(),
            report.mean_throughput(),
            straggler_summary.mean,
            straggler_summary.max,
            Summary::of(&steps).cv(),
        );
    }
    println!(
        "\nNote how `random` — an arbitrary but *consistent* order on every worker —\n\
         already removes most of the straggling (the paper's §6.3 observation);\n\
         TIC/TAC additionally improve the overlap, and thus throughput."
    );
    Ok(())
}
