//! Visualize one iteration as a Gantt chart: how transfers (`=`) and
//! computation (`#`) overlap under the baseline vs under TIC.
//!
//! ```text
//! cargo run --release --example trace_timeline [model]
//! ```

use tictac::{
    deploy, gantt, no_ordering, simulate, tic, ClusterSpec, Mode, Model, NoiseModel, SimConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = std::env::args()
        .nth(1)
        .and_then(|name| Model::from_name(&name))
        .unwrap_or(Model::AlexNetV2);

    let graph = model.build(Mode::Training);
    let deployed = deploy(&graph, &ClusterSpec::new(2, 1))?;
    let g = deployed.graph();
    // Noise off so the two charts differ only by schedule.
    let config = SimConfig::cloud_gpu().with_noise(NoiseModel::none());

    let baseline_trace = simulate(g, &no_ordering(g), &config, 0);
    let schedule = deployed.replicate_schedule(&tic(g, deployed.workers()[0]));
    let tic_trace = simulate(g, &schedule, &config, 0);

    println!(
        "{} training, 2 workers / 1 PS — baseline (makespan {}):\n",
        model.name(),
        baseline_trace.makespan()
    );
    println!("{}", gantt(g, &baseline_trace, 100));
    println!("TIC (makespan {}):\n", tic_trace.makespan());
    println!("{}", gantt(g, &tic_trace, 100));
    println!(
        "speedup: {:+.1}%  (`=` transfer busy, `#` compute busy; TicTac pulls the\n\
         compute span left to overlap the transfer span)",
        (baseline_trace.makespan().as_secs_f64() / tic_trace.makespan().as_secs_f64() - 1.0)
            * 100.0
    );
    Ok(())
}
