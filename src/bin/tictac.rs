//! `tictac` — command-line front end to the TicTac reproduction.
//!
//! ```text
//! tictac models
//! tictac schedule resnet_v1_50 --scheduler tac --top 20
//! tictac run inception_v3 --workers 8 --ps 2 --scheduler tic --env g
//! tictac run examples/scenarios/vgg19_hetero.yml     # declarative scenario
//! tictac run sweep.yml --dry-run                     # validate + show the grid
//! tictac timeline alexnet_v2 --format chrome --out trace.json
//! tictac run alexnet_v2 --store results/runs.jsonl   # record the run
//! tictac runs list --workload alexnet_v2             # query the corpus
//! tictac runs show                                   # latest record, percentiles
//! tictac runs diff --last-two                        # drift between two runs
//! tictac runs regress --window 5                     # history-aware CI gate
//! ```
//!
//! The `runs` subcommands read the run store — `--store PATH`, else the
//! `TICTAC_RUN_STORE` environment variable, else `results/runs.jsonl`.

use std::collections::HashMap;
use tictac::{
    deploy, diff_records, estimate_profile, gantt, no_ordering, regress, simulate, tac_order, tic,
    ClusterSpec, Mode, Model, Payload, RegressPolicy, RunFilter, RunRecord, RunStore, Scenario,
    SchedulerKind, Session, SessionSummary, SimConfig,
};
use tictac_bench::runner::parallel_map;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage("");
    };
    let flags = parse_flags(&args[1..]);
    match command.as_str() {
        "models" => models(),
        "schedule" => schedule(&args, &flags),
        "run" => run(&args, &flags),
        "runs" => runs(&args, &flags),
        "timeline" => timeline(&args, &flags),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn parse_flags(rest: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = rest.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it
                .peek()
                .filter(|v| !v.starts_with("--"))
                .map(|v| v.to_string())
                .unwrap_or_default();
            if !value.is_empty() {
                it.next();
            }
            flags.insert(name.to_string(), value);
        }
    }
    flags
}

fn model_arg(args: &[String]) -> Model {
    args.get(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|name| Model::from_name(name))
        .unwrap_or_else(|| {
            usage(&format!(
                "expected a model name ({})",
                Model::ALL.map(Model::name).join(", ")
            ))
        })
}

fn flag_usize(flags: &HashMap<String, String>, name: &str, default: usize) -> usize {
    flags
        .get(name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| usage(&format!("--{name} expects a number")))
        })
        .unwrap_or(default)
}

fn flag_mode(flags: &HashMap<String, String>) -> Mode {
    match flags.get("mode").map(String::as_str) {
        Some("inference") => Mode::Inference,
        Some("train") | Some("training") | None => Mode::Training,
        Some(other) => usage(&format!("unknown --mode `{other}`")),
    }
}

fn flag_config(flags: &HashMap<String, String>) -> SimConfig {
    match flags.get("env").map(String::as_str) {
        Some("c") | Some("envC") => SimConfig::cpu_cluster(),
        Some("g") | Some("envG") | None => SimConfig::cloud_gpu(),
        Some(other) => usage(&format!("unknown --env `{other}` (use g or c)")),
    }
}

fn flag_scheduler(flags: &HashMap<String, String>) -> SchedulerKind {
    match flags.get("scheduler").map(String::as_str) {
        Some("baseline") => SchedulerKind::Baseline,
        Some("random") => SchedulerKind::Random,
        Some("tic") | None => SchedulerKind::Tic,
        Some("tac") => SchedulerKind::Tac,
        Some(other) => usage(&format!("unknown --scheduler `{other}`")),
    }
}

fn models() {
    println!(
        "{:<16} {:>6} {:>10} {:>9} {:>10} {:>6}",
        "model", "params", "size(MiB)", "ops(inf)", "ops(train)", "batch"
    );
    for model in Model::ALL {
        let inf = model.build_with_batch(Mode::Inference, 1);
        let tr = model.build_with_batch(Mode::Training, 1);
        let s = inf.stats();
        println!(
            "{:<16} {:>6} {:>10.2} {:>9} {:>10} {:>6}",
            model.name(),
            s.params,
            s.param_mib(),
            s.ops,
            tr.stats().ops,
            model.default_batch()
        );
    }
}

fn schedule(args: &[String], flags: &HashMap<String, String>) {
    let model = model_arg(args);
    let top = flag_usize(flags, "top", 25);
    let config = flag_config(flags);
    let graph = model.build(flag_mode(flags));
    let deployed = deploy(&graph, &ClusterSpec::new(1, 1))
        .unwrap_or_else(|e| usage(&format!("invalid deployment: {e}")));
    let g = deployed.graph();
    let worker = deployed.workers()[0];

    let order = match flag_scheduler(flags) {
        SchedulerKind::Tac => {
            let unordered = no_ordering(g);
            let traces: Vec<_> = (0..5)
                .map(|i| simulate(g, &unordered, &config, i))
                .collect();
            tac_order(g, worker, &estimate_profile(&traces))
        }
        _ => {
            let s = tic(g, worker);
            let mut recvs = g.recv_ops_on(worker);
            recvs.sort_by_key(|&op| (s.priority(op), op));
            recvs
        }
    };
    println!(
        "{}: transfer order ({} of {} shown)",
        model.name(),
        top.min(order.len()),
        order.len()
    );
    for (rank, op) in order.iter().take(top).enumerate() {
        println!("{rank:>4}  {}", g.op_name(*op));
    }
}

/// Does `run`'s positional argument name a scenario file rather than a
/// zoo model? Scenario mode is chosen by extension (`.yml` / `.yaml`),
/// or by the argument being an existing file that is not a model name.
fn is_scenario_arg(arg: &str) -> bool {
    let lower = arg.to_ascii_lowercase();
    lower.ends_with(".yml")
        || lower.ends_with(".yaml")
        || (Model::from_name(arg).is_none() && std::path::Path::new(arg).is_file())
}

/// `tictac run scenario.yml`: parse, expand the grid, and either validate
/// (`--dry-run`) or execute every expanded point.
fn run_scenario(path: &str, flags: &HashMap<String, String>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    let grid = Scenario::parse_grid(&text).unwrap_or_else(|e| usage(&format!("{path}: {e}")));
    if flags.contains_key("dry-run") {
        println!("{path}: valid — {} scenario(s) in the grid", grid.len());
        for s in &grid {
            println!(
                "  {:016x}  {} | {} {}x{} | {} | {} | {} | seed {} | {}+{} iters",
                s.fingerprint(),
                s.name,
                s.model.name(),
                s.cluster.workers,
                s.cluster.parameter_servers,
                if s.cluster.is_uniform() {
                    "uniform"
                } else {
                    "hetero"
                },
                s.scheduler,
                s.backend,
                s.seed,
                s.warmup,
                s.iterations,
            );
        }
        return;
    }
    if let Some(store) = tictac::store::arm_global_store(flags.get("store").map(String::as_str)) {
        eprintln!("recording to {}", store.path().display());
    }
    let results = parallel_map(grid, |s| {
        let session = Session::from_scenario(s)
            .unwrap_or_else(|e| usage(&format!("{path} ({}/{}): {e}", s.scheduler, s.backend)));
        let report = session
            .try_run()
            .map_err(|e| format!("{e}"))
            .unwrap_or_else(|e| usage(&format!("{path} ({}/{}): {e}", s.scheduler, s.backend)));
        (s.clone(), report)
    });
    for (s, report) in &results {
        println!(
            "{} [{:016x}] | {} | {} | {} workers / {} ps | seed {} | \
             throughput {:.1} samples/s | iteration {} | efficiency {:.3}",
            s.name,
            s.fingerprint(),
            s.scheduler,
            s.backend,
            s.cluster.workers,
            s.cluster.parameter_servers,
            s.seed,
            report.mean_throughput(),
            report.mean_makespan(),
            report.mean_efficiency(),
        );
    }
}

fn run(args: &[String], flags: &HashMap<String, String>) {
    if let Some(arg) = args.get(1).filter(|a| !a.starts_with("--")) {
        if is_scenario_arg(arg) {
            run_scenario(arg, flags);
            return;
        }
    }
    let model = model_arg(args);
    let workers = flag_usize(flags, "workers", 4);
    let ps = flag_usize(flags, "ps", (workers / 4).max(1));
    let iterations = flag_usize(flags, "iterations", 10);
    let scheduler = flag_scheduler(flags);
    if let Some(store) = tictac::store::arm_global_store(flags.get("store").map(String::as_str)) {
        eprintln!("recording to {}", store.path().display());
    }
    let cluster = ClusterSpec::try_new(workers, ps)
        .unwrap_or_else(|e| usage(&format!("invalid cluster: {e}")));
    let session = Session::builder(model.build(flag_mode(flags)))
        .cluster(cluster)
        .config(flag_config(flags))
        .scheduler(scheduler)
        .iterations(iterations)
        .build()
        .unwrap_or_else(|e| usage(&format!("invalid deployment: {e}")));
    let report = session.run();
    println!(
        "{} | {scheduler} | {workers} workers / {ps} ps | {} iterations",
        model.name(),
        iterations
    );
    println!(
        "throughput {:.1} samples/s | iteration {} | efficiency {:.3} | straggler max {:.1}%",
        report.mean_throughput(),
        report.mean_makespan(),
        report.mean_efficiency(),
        report.max_straggler_pct()
    );
}

/// Store path resolution for `runs`: `--store`, else `TICTAC_RUN_STORE`,
/// else the committed default corpus (one shared rule in `tictac-store`).
fn runs_store(flags: &HashMap<String, String>) -> RunStore {
    RunStore::at(tictac::store::resolve_store_path(
        flags.get("store").map(String::as_str),
    ))
}

fn flag_u64(flags: &HashMap<String, String>, name: &str) -> Option<u64> {
    flags.get(name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| usage(&format!("--{name} expects an unsigned integer")))
    })
}

fn runs_filter(flags: &HashMap<String, String>) -> RunFilter {
    RunFilter {
        workload: flags.get("workload").cloned().filter(|v| !v.is_empty()),
        scheduler: flags.get("scheduler").cloned().filter(|v| !v.is_empty()),
        backend: flags.get("backend").cloned().filter(|v| !v.is_empty()),
        kind: flags.get("kind").cloned().filter(|v| !v.is_empty()),
        seed_min: flag_u64(flags, "seed-min"),
        seed_max: flag_u64(flags, "seed-max"),
    }
}

/// One summary line per record, for `runs list`.
fn list_line(r: &RunRecord) -> String {
    let evidence = match &r.payload {
        Payload::Session(s) => {
            let sum = SessionSummary::of(s);
            format!(
                "iters {} | mean makespan {:.0} ns | eff {:.3} | inversions {}",
                sum.iterations, sum.mean_makespan_ns, sum.mean_efficiency, sum.inversions
            )
        }
        Payload::Bench(b) => format!("{} phases (wall-clock)", b.phases.len()),
        Payload::Report(rep) => format!(
            "report fp {:016x}{}",
            rep.report_fp,
            if rep.quick { " (quick)" } else { "" }
        ),
    };
    format!(
        "{}  {:<7} {:<16} {:>3}x{:<2} {:<8} {:<8} seed {:<12} {evidence}",
        r.id,
        r.payload.kind(),
        r.workload,
        r.workers,
        r.ps,
        r.scheduler,
        r.backend,
        r.seed
    )
}

/// Full detail for `runs show`, percentiles included.
fn show_record(r: &RunRecord) {
    println!("run       {}", r.id);
    println!("kind      {} (source {})", r.payload.kind(), r.source);
    println!("workload  {} (model fp {:016x})", r.workload, r.model_fp);
    println!("cluster   {} workers / {} ps", r.workers, r.ps);
    println!("scheduler {} | backend {}", r.scheduler, r.backend);
    println!("seed      {} | fault fp {:016x}", r.seed, r.fault_fp);
    if r.scenario_fp != 0 {
        println!("scenario  fp {:016x}", r.scenario_fp);
    }
    if !r.provenance.is_empty() {
        println!("prov      {}", r.provenance);
    }
    match &r.payload {
        Payload::Session(s) => {
            let sum = SessionSummary::of(s);
            println!("iterations        {}", sum.iterations);
            println!("mean makespan     {:.0} ns", sum.mean_makespan_ns);
            println!(
                "makespan p50/p95/p99  {} / {} / {} ns",
                sum.p50_makespan_ns, sum.p95_makespan_ns, sum.p99_makespan_ns
            );
            println!("mean efficiency   {:.4}", sum.mean_efficiency);
            println!("mean goodput      {:.1}%", sum.mean_goodput_pct);
            println!("inversions        {}", sum.inversions);
            println!("fault events      {}", sum.fault_events);
            if !s.snapshot.entries.is_empty() {
                println!("metrics snapshot:");
                for line in s.snapshot.render().lines() {
                    println!("  {line}");
                }
            }
        }
        Payload::Bench(b) => {
            println!("phases (wall-clock medians):");
            for p in &b.phases {
                println!("  {:<18} {:.3} ms", p.name, p.mean_ms);
            }
        }
        Payload::Report(rep) => {
            println!("report fp         {:016x}", rep.report_fp);
            println!("quick             {}", rep.quick);
        }
    }
}

fn runs(args: &[String], flags: &HashMap<String, String>) {
    let sub = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("list");
    let store = runs_store(flags);
    let records = store
        .load()
        .unwrap_or_else(|e| usage(&format!("cannot load {}: {e}", store.path().display())));
    let filter = runs_filter(flags);
    let filtered: Vec<&RunRecord> = records.iter().filter(|r| filter.matches(r)).collect();
    match sub {
        "list" => {
            for r in &filtered {
                println!("{}", list_line(r));
            }
            println!(
                "{} record(s) in {} ({} after filters)",
                records.len(),
                store.path().display(),
                filtered.len()
            );
        }
        "show" => {
            let record = match flags.get("id").filter(|v| !v.is_empty()) {
                Some(id) => filtered
                    .iter()
                    .find(|r| &r.id == id)
                    .unwrap_or_else(|| usage(&format!("no record with id {id}"))),
                None => filtered
                    .last()
                    .unwrap_or_else(|| usage("the store is empty (after filters)")),
            };
            show_record(record);
        }
        "diff" => {
            let by_id = |key: &str| {
                flags.get(key).filter(|v| !v.is_empty()).map(|id| {
                    *filtered
                        .iter()
                        .find(|r| &r.id == id)
                        .unwrap_or_else(|| usage(&format!("no record with id {id}")))
                })
            };
            let (a, b) = match (by_id("a"), by_id("b")) {
                (Some(a), Some(b)) => (a, b),
                (None, None) => {
                    // Default (also spelled --last-two): the two most
                    // recent records under the filters.
                    if filtered.len() < 2 {
                        usage("need at least two records to diff");
                    }
                    (filtered[filtered.len() - 2], filtered[filtered.len() - 1])
                }
                _ => usage("--a and --b must be passed together"),
            };
            let diff = diff_records(a, b);
            print!("{}", diff.render());
            if diff.is_zero() {
                println!("zero drift");
            }
        }
        "regress" => {
            let policy = RegressPolicy {
                window: flag_usize(flags, "window", RegressPolicy::default().window),
                ..RegressPolicy::default()
            };
            let owned: Vec<RunRecord> = filtered.iter().map(|r| (*r).clone()).collect();
            let report = regress(&owned, &policy);
            print!("{}", report.render());
            if report.failed() {
                std::process::exit(1);
            }
        }
        other => usage(&format!("unknown runs subcommand `{other}`")),
    }
}

fn timeline(args: &[String], flags: &HashMap<String, String>) {
    let model = model_arg(args);
    let workers = flag_usize(flags, "workers", 2);
    let ps = flag_usize(flags, "ps", 1);
    let config = flag_config(flags);
    let graph = model.build(flag_mode(flags));
    let cluster = ClusterSpec::try_new(workers, ps)
        .unwrap_or_else(|e| usage(&format!("invalid cluster: {e}")));
    let deployed =
        deploy(&graph, &cluster).unwrap_or_else(|e| usage(&format!("invalid deployment: {e}")));
    let g = deployed.graph();
    let schedule = match flag_scheduler(flags) {
        SchedulerKind::Baseline => no_ordering(g),
        _ => deployed.replicate_schedule(&tic(g, deployed.workers()[0])),
    };
    let trace = simulate(g, &schedule, &config, 0);
    let rendered = match flags.get("format").map(String::as_str) {
        Some("chrome") => trace.to_chrome_json(g),
        Some("tsv") => trace.to_tsv(g),
        Some("gantt") | None => gantt(g, &trace, 100),
        Some(other) => usage(&format!("unknown --format `{other}`")),
    };
    match flags.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, rendered).expect("write output file");
            eprintln!("wrote {path} (makespan {})", trace.makespan());
        }
        _ => println!("{rendered}"),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "tictac — communication scheduling for distributed deep learning (MLSys'19 reproduction)\n\n\
         usage:\n\
         \x20 tictac models\n\
         \x20 tictac schedule <model> [--mode train|inference] [--scheduler tic|tac] [--top N] [--env g|c]\n\
         \x20 tictac run <model> [--workers N] [--ps N] [--scheduler baseline|random|tic|tac]\n\
         \x20        [--iterations N] [--mode train|inference] [--env g|c] [--store FILE.jsonl]\n\
         \x20 tictac run <scenario.yml> [--dry-run] [--store FILE.jsonl]\n\
         \x20 tictac runs [list|show|diff|regress] [--store FILE.jsonl] [--workload NAME]\n\
         \x20        [--scheduler S] [--backend B] [--kind session|bench|report]\n\
         \x20        [--seed-min N] [--seed-max N] [--id RID] [--a RID --b RID] [--window N]\n\
         \x20 tictac timeline <model> [--workers N] [--ps N] [--scheduler baseline|tic]\n\
         \x20        [--format gantt|chrome|tsv] [--out FILE] [--env g|c]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
