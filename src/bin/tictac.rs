//! `tictac` — command-line front end to the TicTac reproduction.
//!
//! ```text
//! tictac models
//! tictac schedule resnet_v1_50 --scheduler tac --top 20
//! tictac run inception_v3 --workers 8 --ps 2 --scheduler tic --env g
//! tictac timeline alexnet_v2 --format chrome --out trace.json
//! ```

use std::collections::HashMap;
use tictac::{
    deploy, estimate_profile, gantt, no_ordering, simulate, tac_order, tic, ClusterSpec, Mode,
    Model, SchedulerKind, Session, SimConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage("");
    };
    let flags = parse_flags(&args[1..]);
    match command.as_str() {
        "models" => models(),
        "schedule" => schedule(&args, &flags),
        "run" => run(&args, &flags),
        "timeline" => timeline(&args, &flags),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn parse_flags(rest: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = rest.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it
                .peek()
                .filter(|v| !v.starts_with("--"))
                .map(|v| v.to_string())
                .unwrap_or_default();
            if !value.is_empty() {
                it.next();
            }
            flags.insert(name.to_string(), value);
        }
    }
    flags
}

fn model_arg(args: &[String]) -> Model {
    args.get(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|name| Model::from_name(name))
        .unwrap_or_else(|| {
            usage(&format!(
                "expected a model name ({})",
                Model::ALL.map(Model::name).join(", ")
            ))
        })
}

fn flag_usize(flags: &HashMap<String, String>, name: &str, default: usize) -> usize {
    flags
        .get(name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| usage(&format!("--{name} expects a number")))
        })
        .unwrap_or(default)
}

fn flag_mode(flags: &HashMap<String, String>) -> Mode {
    match flags.get("mode").map(String::as_str) {
        Some("inference") => Mode::Inference,
        Some("train") | Some("training") | None => Mode::Training,
        Some(other) => usage(&format!("unknown --mode `{other}`")),
    }
}

fn flag_config(flags: &HashMap<String, String>) -> SimConfig {
    match flags.get("env").map(String::as_str) {
        Some("c") | Some("envC") => SimConfig::cpu_cluster(),
        Some("g") | Some("envG") | None => SimConfig::cloud_gpu(),
        Some(other) => usage(&format!("unknown --env `{other}` (use g or c)")),
    }
}

fn flag_scheduler(flags: &HashMap<String, String>) -> SchedulerKind {
    match flags.get("scheduler").map(String::as_str) {
        Some("baseline") => SchedulerKind::Baseline,
        Some("random") => SchedulerKind::Random,
        Some("tic") | None => SchedulerKind::Tic,
        Some("tac") => SchedulerKind::Tac,
        Some(other) => usage(&format!("unknown --scheduler `{other}`")),
    }
}

fn models() {
    println!(
        "{:<16} {:>6} {:>10} {:>9} {:>10} {:>6}",
        "model", "params", "size(MiB)", "ops(inf)", "ops(train)", "batch"
    );
    for model in Model::ALL {
        let inf = model.build_with_batch(Mode::Inference, 1);
        let tr = model.build_with_batch(Mode::Training, 1);
        let s = inf.stats();
        println!(
            "{:<16} {:>6} {:>10.2} {:>9} {:>10} {:>6}",
            model.name(),
            s.params,
            s.param_mib(),
            s.ops,
            tr.stats().ops,
            model.default_batch()
        );
    }
}

fn schedule(args: &[String], flags: &HashMap<String, String>) {
    let model = model_arg(args);
    let top = flag_usize(flags, "top", 25);
    let config = flag_config(flags);
    let graph = model.build(flag_mode(flags));
    let deployed = deploy(&graph, &ClusterSpec::new(1, 1))
        .unwrap_or_else(|e| usage(&format!("invalid deployment: {e}")));
    let g = deployed.graph();
    let worker = deployed.workers()[0];

    let order = match flag_scheduler(flags) {
        SchedulerKind::Tac => {
            let unordered = no_ordering(g);
            let traces: Vec<_> = (0..5)
                .map(|i| simulate(g, &unordered, &config, i))
                .collect();
            tac_order(g, worker, &estimate_profile(&traces))
        }
        _ => {
            let s = tic(g, worker);
            let mut recvs = g.recv_ops_on(worker);
            recvs.sort_by_key(|&op| (s.priority(op), op));
            recvs
        }
    };
    println!(
        "{}: transfer order ({} of {} shown)",
        model.name(),
        top.min(order.len()),
        order.len()
    );
    for (rank, op) in order.iter().take(top).enumerate() {
        println!("{rank:>4}  {}", g.op_name(*op));
    }
}

fn run(args: &[String], flags: &HashMap<String, String>) {
    let model = model_arg(args);
    let workers = flag_usize(flags, "workers", 4);
    let ps = flag_usize(flags, "ps", (workers / 4).max(1));
    let iterations = flag_usize(flags, "iterations", 10);
    let scheduler = flag_scheduler(flags);
    let cluster = ClusterSpec::try_new(workers, ps)
        .unwrap_or_else(|e| usage(&format!("invalid cluster: {e}")));
    let session = Session::builder(model.build(flag_mode(flags)))
        .cluster(cluster)
        .config(flag_config(flags))
        .scheduler(scheduler)
        .iterations(iterations)
        .build()
        .unwrap_or_else(|e| usage(&format!("invalid deployment: {e}")));
    let report = session.run();
    println!(
        "{} | {scheduler} | {workers} workers / {ps} ps | {} iterations",
        model.name(),
        iterations
    );
    println!(
        "throughput {:.1} samples/s | iteration {} | efficiency {:.3} | straggler max {:.1}%",
        report.mean_throughput(),
        report.mean_makespan(),
        report.mean_efficiency(),
        report.max_straggler_pct()
    );
}

fn timeline(args: &[String], flags: &HashMap<String, String>) {
    let model = model_arg(args);
    let workers = flag_usize(flags, "workers", 2);
    let ps = flag_usize(flags, "ps", 1);
    let config = flag_config(flags);
    let graph = model.build(flag_mode(flags));
    let cluster = ClusterSpec::try_new(workers, ps)
        .unwrap_or_else(|e| usage(&format!("invalid cluster: {e}")));
    let deployed =
        deploy(&graph, &cluster).unwrap_or_else(|e| usage(&format!("invalid deployment: {e}")));
    let g = deployed.graph();
    let schedule = match flag_scheduler(flags) {
        SchedulerKind::Baseline => no_ordering(g),
        _ => deployed.replicate_schedule(&tic(g, deployed.workers()[0])),
    };
    let trace = simulate(g, &schedule, &config, 0);
    let rendered = match flags.get("format").map(String::as_str) {
        Some("chrome") => trace.to_chrome_json(g),
        Some("tsv") => trace.to_tsv(g),
        Some("gantt") | None => gantt(g, &trace, 100),
        Some(other) => usage(&format!("unknown --format `{other}`")),
    };
    match flags.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, rendered).expect("write output file");
            eprintln!("wrote {path} (makespan {})", trace.makespan());
        }
        _ => println!("{rendered}"),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "tictac — communication scheduling for distributed deep learning (MLSys'19 reproduction)\n\n\
         usage:\n\
         \x20 tictac models\n\
         \x20 tictac schedule <model> [--mode train|inference] [--scheduler tic|tac] [--top N] [--env g|c]\n\
         \x20 tictac run <model> [--workers N] [--ps N] [--scheduler baseline|random|tic|tac]\n\
         \x20        [--iterations N] [--mode train|inference] [--env g|c]\n\
         \x20 tictac timeline <model> [--workers N] [--ps N] [--scheduler baseline|tic]\n\
         \x20        [--format gantt|chrome|tsv] [--out FILE] [--env g|c]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
