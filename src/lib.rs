//! TicTac — communication scheduling for distributed deep learning.
//!
//! This crate is the top-level façade of the TicTac reproduction workspace.
//! It re-exports the high-level API from [`tictac_core`]; the substrate
//! crates (`tictac-graph`, `tictac-sim`, …) can be used directly for
//! lower-level experiments.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the system
//! inventory.

#![forbid(unsafe_code)]

pub use tictac_core::*;
