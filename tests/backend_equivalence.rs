//! Backend-equivalence suite: the threaded runtime must execute the same
//! deployments, under the same schedules, with the same ordering
//! guarantees the simulator models — while its timestamps live on the
//! real wall clock.
//!
//! Three families of checks:
//!
//! * **DAG-ordering invariants** (proptest): on a threaded trace no op
//!   starts before its predecessors end. Send predecessors are skipped:
//!   a send record deliberately shares its paired recv's wire interval
//!   (the simulator attributes transfers to both endpoints), so the recv
//!   legitimately "starts" when its send does.
//! * **Enforcement invariants**: under enforced TAC every zoo model runs
//!   to completion with zero priority inversions on every channel.
//! * **Cross-backend agreement**: where the simulator predicts a clear
//!   TAC-over-baseline win, the threaded runtime agrees within a jitter
//!   margin, and schedules are byte-identical across backends.

use proptest::prelude::*;
use tictac::{
    priority_inversions, ClusterSpec, Mode, Model, RunOptions, SchedulerKind, Session, SimConfig,
    ThreadedBackend,
};
use tictac_models::tiny_mlp;

fn threaded_session(
    model: tictac::ModelGraph,
    cluster: ClusterSpec,
    scheduler: SchedulerKind,
    iterations: usize,
) -> Session {
    Session::builder(model)
        .cluster(cluster)
        .config(SimConfig::cloud_gpu())
        .scheduler(scheduler)
        .backend(
            ThreadedBackend::from_config(&SimConfig::cloud_gpu())
                .expect("preset config is supported")
                .with_time_scale(0.5)
                .with_watchdog(std::time::Duration::from_secs(60)),
        )
        .warmup(0)
        .iterations(iterations)
        .build()
        .expect("model deploys")
}

/// No op may start before a non-send predecessor ends. (Send records
/// share their recv's wire interval by design, so they are excluded.)
fn assert_dag_order(session: &Session) {
    let graph = session.deployed().graph();
    let trace = session.trace_iteration(0).expect("iteration completes");
    assert_eq!(trace.executed_ops(), graph.len(), "every op executed");
    for op in graph.op_ids() {
        let rec = trace.record(op).expect("op recorded");
        for &pred in graph.preds(op) {
            if graph.op(pred).kind().is_send() {
                continue;
            }
            let p = trace.record(pred).expect("pred recorded");
            assert!(
                p.end <= rec.start,
                "{:?} started at {:?} before its input {:?} ended at {:?}",
                graph.op_name(op),
                rec.start,
                graph.op_name(pred),
                p.end,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn threaded_traces_respect_the_dag(
        batch in 4usize..12,
        workers in 1usize..4,
        which in 0usize..4,
    ) {
        let scheduler = SchedulerKind::ALL[which];
        let s = threaded_session(
            tiny_mlp(Mode::Training, batch),
            ClusterSpec::new(workers, 1),
            scheduler,
            1,
        );
        assert_dag_order(&s);
    }
}

#[test]
fn every_zoo_model_completes_with_zero_inversions_under_enforced_tac() {
    for model in Model::ALL {
        let s = threaded_session(
            model.build_with_batch(Mode::Training, 2),
            ClusterSpec::new(2, 1),
            SchedulerKind::Tac,
            1,
        );
        let graph = s.deployed().graph();
        let schedule = s.schedule().clone();
        let trace = s.trace_iteration(0).expect("iteration completes");
        assert_eq!(
            trace.executed_ops(),
            graph.len(),
            "{}: threaded run must complete",
            model.name()
        );
        let report = priority_inversions(graph, &trace, |op| schedule.priority(op));
        assert_eq!(
            report.count(),
            0,
            "{}: enforced TAC must fly transfers in rank order, got {:?}",
            model.name(),
            report.records
        );
    }
}

#[test]
fn schedules_are_byte_identical_across_backends() {
    for model in Model::ALL {
        for scheduler in SchedulerKind::ALL {
            let sim = Session::builder(model.build_with_batch(Mode::Training, 2))
                .cluster(ClusterSpec::new(2, 1))
                .config(SimConfig::cloud_gpu())
                .scheduler(scheduler)
                .build()
                .expect("model deploys");
            let threaded = threaded_session(
                model.build_with_batch(Mode::Training, 2),
                ClusterSpec::new(2, 1),
                scheduler,
                1,
            );
            assert_eq!(
                sim.schedule(),
                threaded.schedule(),
                "{}/{scheduler}: schedule must not depend on the backend",
                model.name()
            );
        }
    }
}

/// Where the simulator predicts a decisive TAC win over the baseline
/// (>= 5% makespan reduction), the threaded runtime must agree on the
/// direction within a generous wall-clock jitter margin.
#[test]
fn decisive_sim_rankings_hold_on_the_wall_clock() {
    let cluster = ClusterSpec::new(4, 1);
    let mut decisive = 0usize;
    for model in [Model::AlexNetV2, Model::ResNet50V1, Model::Vgg16] {
        let mean = |scheduler: SchedulerKind, threaded: bool| -> f64 {
            let graph = model.build_with_batch(Mode::Training, model.default_batch());
            let builder = Session::builder(graph)
                .cluster(cluster.clone())
                .config(SimConfig::cloud_gpu())
                .scheduler(scheduler)
                .warmup(1)
                .iterations(3);
            let builder = if threaded {
                builder.backend(
                    ThreadedBackend::from_config(&SimConfig::cloud_gpu())
                        .expect("preset config is supported")
                        .with_watchdog(std::time::Duration::from_secs(60)),
                )
            } else {
                builder
            };
            let report = builder
                .build()
                .expect("model deploys")
                .run_with(RunOptions::new());
            report.mean_makespan().as_secs_f64()
        };
        let sim_base = mean(SchedulerKind::Baseline, false);
        let sim_tac = mean(SchedulerKind::Tac, false);
        if sim_tac > sim_base * 0.95 {
            continue; // not decisive in the simulator; skip
        }
        decisive += 1;
        let wall_base = mean(SchedulerKind::Baseline, true);
        let wall_tac = mean(SchedulerKind::Tac, true);
        assert!(
            wall_tac < wall_base * 1.02,
            "{}: sim predicts TAC {:.1}% faster, but wall-clock TAC {:.3}ms vs baseline {:.3}ms",
            model.name(),
            (1.0 - sim_tac / sim_base) * 100.0,
            wall_tac * 1e3,
            wall_base * 1e3,
        );
    }
    assert!(
        decisive > 0,
        "at least one model must show a decisive sim win"
    );
}
