//! Chaos harness for the threaded runtime: randomized fault schedules
//! must never hang it, recovery must preserve DAG order, and — the
//! cross-backend contract — the same seed and [`FaultSpec`] must yield
//! identical [`FaultCounters`] on the simulator and on the wall clock
//! for every fault class whose accounting is timing-independent.
//!
//! Blackouts and crashes are excluded from the *exact-equality* suite by
//! design: the simulator kills in-flight transfers when a channel goes
//! dark (adding order-dependent drops), while the threaded runtime parks
//! the channel thread and lets the flight land. Those classes get their
//! own completion/accounting tests instead; see DESIGN.md §11.

use std::time::Duration;

use proptest::prelude::*;
use tictac::{
    deploy, no_ordering, simulate, validate_perfetto, ClusterSpec, DeployedModel, ExecError,
    FaultCounters, FaultPlan, FaultSpec, Mode, RetryPolicy, RuntimeError, SchedulerKind, Session,
    SimConfig, SimDuration, ThreadedBackend,
};
use tictac_models::tiny_mlp;

/// The fault-free simulated makespan of a deployment — the yardstick all
/// fault instants and durations are expressed against, so specs scale
/// with the model instead of hard-coding microsecond constants.
fn clean_makespan(d: &DeployedModel) -> SimDuration {
    let s = no_ordering(d.graph());
    simulate(d.graph(), &s, &SimConfig::cloud_gpu(), 0).makespan()
}

/// A spec built from timing-independent fault classes only (drops,
/// stragglers, PS stalls), sized relative to the clean makespan `m`.
fn equivalence_spec(m: SimDuration, drops: bool, stragglers: bool, ps_stalls: bool) -> FaultSpec {
    let mut spec = FaultSpec::none()
        .with_onset_window(m.mul_f64(0.3))
        .with_retry(RetryPolicy::fixed(m.mul_f64(0.02), 60));
    if drops {
        spec = spec.with_drop_prob(0.15);
    }
    if stragglers {
        spec = spec.with_stragglers(0.5, 2.0);
    }
    if ps_stalls {
        spec = spec.with_ps_stalls(0.5, m.mul_f64(0.05));
    }
    spec
}

fn sessions_for(cfg: &SimConfig, scale: f64) -> (Session, Session) {
    let sim = Session::builder(tiny_mlp(Mode::Training, 8))
        .cluster(ClusterSpec::new(2, 1))
        .config(cfg.clone())
        .scheduler(SchedulerKind::Tac)
        .warmup(0)
        .iterations(1)
        .build()
        .expect("model deploys");
    let threaded = Session::builder(tiny_mlp(Mode::Training, 8))
        .cluster(ClusterSpec::new(2, 1))
        .config(cfg.clone())
        .scheduler(SchedulerKind::Tac)
        .backend(
            ThreadedBackend::from_config(cfg)
                .expect("preset config is supported")
                .with_time_scale(scale)
                .with_watchdog(Duration::from_secs(60)),
        )
        .warmup(0)
        .iterations(1)
        .build()
        .expect("model deploys");
    (sim, threaded)
}

/// Same seed, same spec → identical fault accounting on both backends,
/// and both complete every op, for every timing-independent fault combo.
#[test]
fn same_seed_gives_identical_fault_counters_on_both_backends() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let m = clean_makespan(&d);
    let combos = [
        (true, false, false),
        (true, true, false),
        (false, true, true),
        (true, true, true),
    ];
    for (drops, stragglers, ps_stalls) in combos {
        let spec = equivalence_spec(m, drops, stragglers, ps_stalls);
        let cfg = SimConfig::cloud_gpu().with_seed(0xC0FFEE).with_faults(spec);
        let (sim, threaded) = sessions_for(&cfg, 0.05);
        let mut hit = false;
        for iteration in 0..4u64 {
            let a = sim.trace_iteration(iteration).expect("sim completes");
            let b = threaded
                .trace_iteration(iteration)
                .expect("threaded completes");
            let ca = FaultCounters::from_trace(&a);
            let cb = FaultCounters::from_trace(&b);
            assert_eq!(
                ca, cb,
                "combo (drops={drops}, stragglers={stragglers}, ps_stalls={ps_stalls}) \
                 iteration {iteration}: sim {ca} vs threaded {cb}"
            );
            assert_eq!(a.executed_ops(), d.graph().len());
            assert_eq!(b.executed_ops(), d.graph().len());
            hit |= !ca.is_clean();
        }
        assert!(
            hit,
            "no faults fired in 4 iterations for combo \
             (drops={drops}, stragglers={stragglers}, ps_stalls={ps_stalls})"
        );
    }
}

/// Blackouts and crashes don't tally identically across backends (see
/// the module docs), but recovery must still complete every op, and the
/// *plan-level* counts — how many windows fired — agree with the shared
/// sampler on both.
#[test]
fn blackouts_and_crashes_recover_and_match_the_sampled_plan() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let m = clean_makespan(&d);
    let spec = FaultSpec::none()
        .with_blackouts(0.6, m.mul_f64(0.05))
        .with_crashes(0.6, m.mul_f64(0.05))
        .with_onset_window(m.mul_f64(0.3))
        .with_retry(RetryPolicy::fixed(m.mul_f64(0.02), 60));
    let cfg = SimConfig::cloud_gpu().with_seed(0xB1ACC).with_faults(spec);
    let (sim, threaded) = sessions_for(&cfg, 0.05);
    let mut windows = 0u64;
    for iteration in 0..4u64 {
        let plan = FaultPlan::sample(&cfg.faults, d.graph(), cfg.seed, iteration);
        let a = sim.trace_iteration(iteration).expect("sim recovers");
        let b = threaded
            .trace_iteration(iteration)
            .expect("threaded recovers");
        assert_eq!(a.executed_ops(), d.graph().len());
        assert_eq!(b.executed_ops(), d.graph().len());
        let cb = FaultCounters::from_trace(&b);
        assert_eq!(
            cb.blackouts,
            plan.blackouts.len() as u64,
            "iteration {iteration}: threaded blackout count must match the plan"
        );
        assert_eq!(
            cb.crashes,
            plan.crashes.len() as u64,
            "iteration {iteration}: threaded crash count must match the plan"
        );
        windows += cb.blackouts + cb.crashes;
    }
    assert!(windows > 0, "no blackout or crash fired in 4 iterations");
}

/// A threaded `Session` that stalls (here: a blackout far longer than
/// the watchdog) reports *which* ops and channels wedged — and the same
/// session object then runs a clean iteration to completion. Each
/// iteration builds fresh runtime state, so one stall must not poison
/// the session.
#[test]
fn a_stalled_session_is_diagnosable_and_reusable() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let spec = FaultSpec::none()
        .with_blackouts(0.6, SimDuration::from_secs_f64(1.0))
        .with_onset_window(SimDuration::from_micros(10));
    let seed = 0x5EED;
    // Locate a stalling and a clean iteration from the shared sampler —
    // the backend will draw exactly these plans.
    let (mut stalling, mut clean) = (None, None);
    for i in 0..64u64 {
        let plan = FaultPlan::sample(&spec, d.graph(), seed, i);
        if !plan.blackouts.is_empty() && stalling.is_none() {
            stalling = Some(i);
        }
        if plan.is_quiet() && clean.is_none() {
            clean = Some(i);
        }
        if stalling.is_some() && clean.is_some() {
            break;
        }
    }
    let stalling = stalling.expect("some iteration draws a blackout");
    let clean = clean.expect("some iteration draws a quiet plan");

    let cfg = SimConfig::cloud_gpu().with_seed(seed).with_faults(spec);
    let session = Session::builder(tiny_mlp(Mode::Training, 8))
        .cluster(ClusterSpec::new(2, 1))
        .config(cfg.clone())
        .scheduler(SchedulerKind::Tac)
        .backend(
            ThreadedBackend::from_config(&cfg)
                .expect("preset config is supported")
                .with_watchdog(Duration::from_millis(250)),
        )
        .warmup(0)
        .iterations(1)
        .build()
        .expect("model deploys");

    match session.trace_iteration(stalling) {
        Err(ExecError::Runtime(RuntimeError::Stalled {
            remaining,
            outstanding,
            channel_depths,
            ..
        })) => {
            assert!(remaining > 0);
            assert!(
                !outstanding.is_empty(),
                "a stall must name its outstanding ops"
            );
            assert_eq!(channel_depths.len(), d.graph().channels().len());
        }
        other => panic!("expected a Stalled error, got {other:?}"),
    }

    let trace = session
        .trace_iteration(clean)
        .expect("the same session must run a clean iteration after a stall");
    assert_eq!(trace.executed_ops(), d.graph().len());
}

/// A hopeless transfer (every attempt dropped, shallow retry budget, no
/// barrier) surfaces through the Session as the typed
/// `RetriesExhausted` error.
#[test]
fn threaded_session_surfaces_retries_exhausted() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let m = clean_makespan(&d);
    let spec = FaultSpec::none()
        .with_drop_prob(1.0)
        .with_retry(RetryPolicy::fixed(m.mul_f64(0.02), 2));
    let cfg = SimConfig::cloud_gpu().with_faults(spec);
    let session = Session::builder(tiny_mlp(Mode::Training, 8))
        .cluster(ClusterSpec::new(2, 1))
        .config(cfg.clone())
        .scheduler(SchedulerKind::Tac)
        .backend(
            ThreadedBackend::from_config(&cfg)
                .expect("preset config is supported")
                .with_time_scale(0.05)
                .with_watchdog(Duration::from_secs(60)),
        )
        .warmup(0)
        .iterations(1)
        .build()
        .expect("model deploys");
    match session.try_run() {
        Err(ExecError::Runtime(RuntimeError::RetriesExhausted { attempts, .. })) => {
            assert_eq!(attempts, 3)
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// The same hopeless load *with* a degraded barrier completes the run
/// with work deferred instead of erroring, and the report's goodput
/// reflects the deferral.
#[test]
fn threaded_session_degrades_at_the_barrier() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let m = clean_makespan(&d);
    let spec = FaultSpec::none()
        .with_drop_prob(1.0)
        .with_retry(RetryPolicy::fixed(m.mul_f64(0.02), 1))
        .with_barrier_timeout(m.mul_f64(3.0));
    let cfg = SimConfig::cloud_gpu().with_faults(spec);
    let session = Session::builder(tiny_mlp(Mode::Training, 8))
        .cluster(ClusterSpec::new(2, 1))
        .config(cfg.clone())
        .scheduler(SchedulerKind::Tac)
        .backend(
            ThreadedBackend::from_config(&cfg)
                .expect("preset config is supported")
                .with_time_scale(0.05)
                .with_watchdog(Duration::from_secs(60)),
        )
        .warmup(0)
        .iterations(1)
        .build()
        .expect("model deploys");
    let report = session.try_run().expect("degraded run completes");
    let totals = report.total_faults();
    assert!(totals.degraded_barriers >= 1);
    assert!(totals.deferred_ops > 0);
    assert!(report.mean_goodput_pct() < 100.0);
}

/// Fault events from a threaded run survive the Perfetto export as
/// `cat:"fault"` instants, so chaos runs are inspectable in the UI.
#[test]
fn perfetto_export_carries_threaded_fault_instants() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let m = clean_makespan(&d);
    let spec = FaultSpec::none()
        .with_drop_prob(0.5)
        .with_retry(RetryPolicy::fixed(m.mul_f64(0.02), 60));
    let cfg = SimConfig::cloud_gpu().with_seed(0xD20D5).with_faults(spec);
    let session = Session::builder(tiny_mlp(Mode::Training, 8))
        .cluster(ClusterSpec::new(2, 1))
        .config(cfg.clone())
        .scheduler(SchedulerKind::Tac)
        .backend(
            ThreadedBackend::from_config(&cfg)
                .expect("preset config is supported")
                .with_time_scale(0.05)
                .with_watchdog(Duration::from_secs(60)),
        )
        .warmup(0)
        .iterations(1)
        .build()
        .expect("model deploys");
    let json = session.perfetto_json(0).expect("faulty iteration exports");
    let stats = validate_perfetto(&json).expect("export is structurally valid");
    assert!(
        stats.fault_names.iter().any(|n| n == "TransferDropped"),
        "expected TransferDropped instants, got {:?}",
        stats.fault_names
    );
    assert!(
        stats.fault_names.iter().any(|n| n == "Retransmit"),
        "expected Retransmit instants, got {:?}",
        stats.fault_names
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized fault schedules across every class at once: the
    /// threaded runtime must always recover and complete (the retry
    /// budget is deep and every window is short), and the executed trace
    /// must still respect the DAG — retransmitted recvs and respawned
    /// workers may not start an op before its inputs finished.
    #[test]
    fn randomized_fault_schedules_never_hang_the_threaded_runtime(
        workers in 1usize..3,
        drop in 0.0f64..0.25,
        blackout_p in 0.0f64..0.5,
        crash_p in 0.0f64..0.5,
        straggler_p in 0.0f64..0.5,
        stall_p in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(workers, 1)).unwrap();
        let m = clean_makespan(&d);
        let spec = FaultSpec::none()
            .with_drop_prob(drop)
            .with_blackouts(blackout_p, m.mul_f64(0.05))
            .with_crashes(crash_p, m.mul_f64(0.05))
            .with_stragglers(straggler_p, 2.0)
            .with_ps_stalls(stall_p, m.mul_f64(0.05))
            .with_onset_window(m.mul_f64(0.3))
            .with_retry(RetryPolicy::fixed(m.mul_f64(0.02), 60));
        let cfg = SimConfig::cloud_gpu().with_seed(seed).with_faults(spec);
        let session = Session::builder(tiny_mlp(Mode::Training, 8))
            .cluster(ClusterSpec::new(workers, 1))
            .config(cfg.clone())
            .scheduler(SchedulerKind::Tac)
            .backend(
                ThreadedBackend::from_config(&cfg)
                    .expect("preset config is supported")
                    .with_time_scale(0.05)
                    .with_watchdog(Duration::from_secs(60)),
            )
            .warmup(0)
            .iterations(1)
            .build()
            .expect("model deploys");
        let graph = session.deployed().graph();
        let trace = session
            .trace_iteration(1)
            .expect("recovery must complete the iteration");
        prop_assert_eq!(trace.executed_ops(), graph.len());
        for op in graph.op_ids() {
            let rec = trace.record(op).expect("op recorded");
            for &pred in graph.preds(op) {
                // Send records share their recv's wire interval by
                // design, so a recv legitimately "starts" with its send.
                if graph.op(pred).kind().is_send() {
                    continue;
                }
                let p = trace.record(pred).expect("pred recorded");
                prop_assert!(
                    p.end <= rec.start,
                    "{:?} started at {:?} before its input {:?} ended at {:?}",
                    graph.op_name(op),
                    rec.start,
                    graph.op_name(pred),
                    p.end,
                );
            }
        }
    }
}
