//! Property-based tests over randomly generated *models* pushed through
//! the full deploy → schedule → simulate pipeline.

use proptest::prelude::*;
use tictac::{deploy, no_ordering, simulate, tic, ClusterSpec, ModelGraph, SimConfig};
use tictac_graph::{ModelGraphBuilder, ModelOpId, ModelOpKind, ParamId};

/// A random layered MLP-ish model: `layers` sequential blocks, each with a
/// weight (+ optional bias) and a couple of ops; training mode adds a
/// mirrored backward pass manually.
fn random_model() -> impl Strategy<Value = ModelGraph> {
    (1usize..7, 1usize..5, any::<u64>()).prop_map(|(layers, width_step, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = ModelGraphBuilder::new("random", 4);
        let mut prev: Option<ModelOpId> = None;
        let mut grads: Vec<(ParamId, ModelOpId)> = Vec::new();
        for l in 0..layers {
            let w = b.add_param(format!("l{l}/w"), vec![8 * width_step, 8]);
            let deps: Vec<ModelOpId> = prev.into_iter().collect();
            let fwd = b.add_op(
                format!("l{l}/fwd"),
                ModelOpKind::Forward,
                rng.gen_range(1e5..1e8),
                &deps,
                &[w],
                &[],
            );
            let act = b.add_op(
                format!("l{l}/act"),
                ModelOpKind::Forward,
                rng.gen_range(1e4..1e6),
                &[fwd],
                &[],
                &[],
            );
            prev = Some(act);
            grads.push((w, fwd));
        }
        let loss = b.add_op(
            "loss",
            ModelOpKind::Loss,
            1e4,
            &prev.into_iter().collect::<Vec<_>>(),
            &[],
            &[],
        );
        let mut bwd_prev = loss;
        for (l, (w, _)) in grads.iter().enumerate().rev() {
            bwd_prev = b.add_op(
                format!("l{l}/grad"),
                ModelOpKind::Backward,
                rng.gen_range(1e5..1e8),
                &[bwd_prev],
                &[*w],
                &[*w],
            );
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_models_deploy_and_simulate(
        model in random_model(),
        workers in 1usize..5,
        ps in 1usize..3,
    ) {
        // A one-layer model only supports one shard.
        let ps = ps.min(model.params().len());
        let deployed = deploy(&model, &ClusterSpec::new(workers, ps)).unwrap();
        let g = deployed.graph();
        prop_assert!(g.check().is_ok());
        // Each worker receives every parameter.
        for w in 0..workers {
            prop_assert_eq!(
                g.recv_ops_on(deployed.workers()[w]).len(),
                model.params().len()
            );
        }
        let trace = simulate(g, &no_ordering(g), &SimConfig::cloud_gpu(), 0);
        prop_assert_eq!(trace.executed_ops(), g.len());
    }

    #[test]
    fn tic_never_slows_noiseless_chains(model in random_model()) {
        // For purely sequential models, TIC's order is exactly forward,
        // which can never lose to a random order in a deterministic run.
        let cfg = SimConfig::cloud_gpu()
            .with_noise(tictac::NoiseModel::none())
            .with_reorder_error(0.0);
        let deployed = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
        let g = deployed.graph();
        let schedule = deployed.replicate_schedule(&tic(g, deployed.workers()[0]));
        let enforced = simulate(g, &schedule, &cfg, 0).makespan();
        let baseline = simulate(g, &no_ordering(g), &cfg, 0).makespan();
        // Allow a whisker of slack for tie-breaking differences.
        prop_assert!(
            enforced.as_nanos() <= baseline.as_nanos() + baseline.as_nanos() / 50,
            "tic {enforced} vs baseline {baseline}"
        );
    }

    #[test]
    fn replicated_schedules_are_consistent_across_workers(
        model in random_model(),
        workers in 2usize..5,
    ) {
        let deployed = deploy(&model, &ClusterSpec::new(workers, 1)).unwrap();
        let g = deployed.graph();
        let schedule = deployed.replicate_schedule(&tic(g, deployed.workers()[0]));
        for p in 0..model.params().len() {
            let param = ParamId::from_index(p);
            let reference = schedule.priority(deployed.recv_op(0, param).unwrap());
            for w in 1..workers {
                prop_assert_eq!(
                    schedule.priority(deployed.recv_op(w, param).unwrap()),
                    reference
                );
            }
        }
    }

    #[test]
    fn training_deployments_conserve_gradient_volume(
        model in random_model(),
        workers in 1usize..4,
    ) {
        let ps = 2.min(model.params().len());
        let deployed = deploy(&model, &ClusterSpec::new(workers, ps)).unwrap();
        let g = deployed.graph();
        let param_bytes: u64 = model.params().iter().map(|p| p.bytes()).sum();
        // Downlink = params x workers; uplink = grads x workers.
        let recv_bytes: u64 = g
            .recv_ops()
            .into_iter()
            .map(|r| g.op(r).cost().bytes)
            .sum();
        prop_assert_eq!(recv_bytes, 2 * param_bytes * workers as u64);
    }
}
