//! Property-based tests for the communication-granularity lowering
//! passes: random models and cluster shapes, pushed through partition /
//! fusion configurations, must keep the deployed graph a valid DAG,
//! keep every recv a root of its worker partition, and conserve each
//! model parameter's bytes exactly across its chunks. The default
//! configuration must stay byte-identical to the pre-pass lowering.

use proptest::prelude::*;
use std::hash::{Hash, Hasher};
use tictac::{
    deploy, no_ordering, simulate, ClusterSpec, CommConfig, Mode, Model, ModelGraph,
    PartitionGraph, SimConfig,
};
use tictac_graph::{ModelGraphBuilder, ModelOpId, ModelOpKind, ParamId};

/// A random layered model, as in `cluster_properties.rs`: each layer has
/// one weight, a forward op and a mirrored backward producer.
fn random_model() -> impl Strategy<Value = ModelGraph> {
    (1usize..7, 1usize..5, any::<u64>()).prop_map(|(layers, width_step, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = ModelGraphBuilder::new("random", 4);
        let mut prev: Option<ModelOpId> = None;
        let mut grads: Vec<ParamId> = Vec::new();
        for l in 0..layers {
            let w = b.add_param(format!("l{l}/w"), vec![8 * width_step, 8]);
            let deps: Vec<ModelOpId> = prev.into_iter().collect();
            let fwd = b.add_op(
                format!("l{l}/fwd"),
                ModelOpKind::Forward,
                rng.gen_range(1e5..1e8),
                &deps,
                &[w],
                &[],
            );
            prev = Some(fwd);
            grads.push(w);
        }
        let loss = b.add_op(
            "loss",
            ModelOpKind::Loss,
            1e4,
            &prev.into_iter().collect::<Vec<_>>(),
            &[],
            &[],
        );
        let mut bwd_prev = loss;
        for (l, w) in grads.iter().enumerate().rev() {
            bwd_prev = b.add_op(
                format!("l{l}/grad"),
                ModelOpKind::Backward,
                rng.gen_range(1e5..1e8),
                &[bwd_prev],
                &[*w],
                &[*w],
            );
        }
        b.build()
    })
}

/// Comm configurations sized for the random models above (their params
/// are 256–4096 bytes), covering both passes on, each alone, and off.
fn comm_config() -> impl Strategy<Value = CommConfig> {
    const PART: [Option<u64>; 4] = [None, Some(64), Some(256), Some(1024)];
    const FUSE: [Option<u64>; 4] = [None, Some(128), Some(512), Some(4096)];
    (0usize..PART.len(), 0usize..FUSE.len()).prop_map(|(p, f)| CommConfig {
        partition_bytes: PART[p],
        fusion_bytes: FUSE[f],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lowered_graphs_stay_valid_and_conserve_bytes(
        model in random_model(),
        workers in 1usize..5,
        ps in 1usize..3,
        comm in comm_config(),
    ) {
        let ps = ps.min(model.params().len());
        let spec = ClusterSpec::new(workers, ps).with_comm(comm);
        let deployed = deploy(&model, &spec).unwrap();
        let g = deployed.graph();
        prop_assert!(g.check().is_ok());

        // Each model parameter's bytes are conserved exactly across the
        // transfer units it was lowered to.
        let mut per_param = vec![0u64; model.params().len()];
        for (i, p) in g.params().iter().enumerate() {
            let (origin, _chunk) = deployed.unit_origin(ParamId::from_index(i));
            per_param[origin] += p.bytes();
        }
        for (i, p) in model.params().iter().enumerate() {
            prop_assert_eq!(per_param[i], p.bytes(), "param {} bytes drifted", i);
        }

        // Every recv — whole, chunked or fused — is a root of its
        // worker's partition: its only dependencies live on the PS side.
        for &w in deployed.workers() {
            let part = PartitionGraph::new(g, w);
            for r in part.recv_ids() {
                let local = part.local(r).expect("recv is on its own partition");
                prop_assert!(
                    part.preds(local).is_empty(),
                    "recv {:?} has an intra-worker predecessor",
                    r
                );
            }
        }

        // The lowered graph still executes to completion.
        let trace = simulate(g, &no_ordering(g), &SimConfig::cloud_gpu(), 0);
        prop_assert_eq!(trace.executed_ops(), g.len());
    }

    #[test]
    fn partition_only_units_repay_their_chunks(
        model in random_model(),
        part_idx in 0usize..3,
    ) {
        let part = [64u64, 200, 1024][part_idx];
        // With fusion off, every graph param is one transfer unit and
        // chunk indices per model param are dense 0..k.
        let spec = ClusterSpec::new(2, 1)
            .with_comm(CommConfig::default().with_partition_bytes(Some(part)));
        let deployed = deploy(&model, &spec).unwrap();
        let g = deployed.graph();
        let mut chunks: Vec<Vec<u16>> = vec![Vec::new(); model.params().len()];
        for i in 0..g.params().len() {
            let (origin, chunk) = deployed.unit_origin(ParamId::from_index(i));
            if let Some(c) = chunk {
                chunks[origin].push(c);
            } else {
                prop_assert!(model.params()[origin].bytes() <= part);
            }
        }
        for (i, cs) in chunks.iter().enumerate() {
            if cs.is_empty() {
                continue;
            }
            prop_assert!(model.params()[i].bytes() > part);
            let want: Vec<u16> = (0..cs.len() as u16).collect();
            prop_assert_eq!(cs.clone(), want, "chunks of param {} are not dense", i);
        }
    }
}

fn spec_hash(spec: &ClusterSpec) -> u64 {
    let mut h = std::hash::DefaultHasher::new();
    spec.hash(&mut h);
    h.finish()
}

/// The satellite identity guarantee: a default `CommConfig` produces the
/// exact pre-pass deployment — same op names in the same order — and
/// hashes to the same cache/store keys as a spec built before the field
/// existed.
#[test]
fn default_config_is_the_pre_pass_identity() {
    let model = Model::AlexNetV2.build_with_batch(Mode::Training, 16);
    let plain_spec = ClusterSpec::new(2, 1);
    let comm_spec = ClusterSpec::new(2, 1).with_comm(CommConfig::default());
    assert_eq!(plain_spec, comm_spec);
    assert_eq!(
        spec_hash(&plain_spec),
        spec_hash(&comm_spec),
        "cache keys alias"
    );
    assert_eq!(CommConfig::default().fingerprint(), 0, "store keys alias");

    let plain = deploy(&model, &plain_spec).unwrap();
    let tuned = deploy(&model, &comm_spec).unwrap();
    assert_eq!(
        plain.graph().rendered_names(),
        tuned.graph().rendered_names()
    );

    // A non-default config must not alias either key space.
    let split =
        ClusterSpec::new(2, 1).with_comm(CommConfig::default().with_partition_bytes(Some(1 << 20)));
    assert_ne!(plain_spec, split);
    assert_ne!(spec_hash(&plain_spec), spec_hash(&split));
    assert_ne!(split.comm().fingerprint(), 0);
}
