//! DeployCache integration: a warm hit must be indistinguishable — byte
//! for byte, under the golden-trace fingerprint — from recomputing the
//! deployment and schedule cold, and the cache key must split on every
//! input that can change the output.

use std::time::Instant;
use tictac::{
    deploy, simulate, ClusterSpec, DeployCache, ExecutionTrace, Mode, Model, Registry,
    SchedulerKind, SimConfig,
};

/// FNV-1a over every op interval, fault event and the makespan — the same
/// fingerprint `tests/golden_traces.rs` pins. Any divergence between a
/// cached and a cold deployment shows up here.
fn fingerprint(trace: &ExecutionTrace) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: &mut u64, v: u64) {
        for byte in v.to_le_bytes() {
            *h ^= byte as u64;
            *h = h.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for i in 0..trace.len() {
        match trace.record(tictac::OpId::from_index(i)) {
            Some(r) => {
                mix(&mut h, i as u64);
                mix(&mut h, r.start.as_nanos());
                mix(&mut h, r.end.as_nanos());
            }
            None => mix(&mut h, u64::MAX),
        }
    }
    for ev in trace.fault_events() {
        mix(&mut h, ev.at.as_nanos());
        for byte in format!("{:?}", ev.kind).bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    mix(&mut h, trace.makespan().as_nanos());
    h
}

/// A warm schedule() hit must reproduce the cold computation exactly: the
/// simulated traces of (cold deploy + cold schedule) and (cached deploy +
/// cached schedule) carry identical fingerprints across iterations.
#[test]
fn warm_hits_are_byte_identical_to_cold_computation() {
    let model = Model::InceptionV1.build_with_batch(Mode::Inference, 4);
    let spec = ClusterSpec::new(2, 1);
    let config = SimConfig::cloud_gpu();
    let registry = Registry::disabled();

    // Cold: straight through the public deploy + scheduler path.
    let cold = deploy(&model, &spec).unwrap();
    let cache = DeployCache::new();
    let (_, cold_schedule) = cache
        .schedule(&model, &spec, SchedulerKind::Tic, &config, &registry)
        .unwrap();

    // Warm: everything served from the cache.
    let (warm_deploy, warm_schedule) = cache
        .schedule(&model, &spec, SchedulerKind::Tic, &config, &registry)
        .unwrap();
    let stats = cache.stats();
    assert_eq!(stats.deploy_hits, 1, "second schedule() reuses the deploy");
    assert_eq!(
        stats.schedule_hits, 1,
        "second schedule() reuses the schedule"
    );

    for iteration in [0, 3, 11] {
        let cold_trace = simulate(cold.graph(), &cold_schedule, &config, iteration);
        let warm_trace = simulate(warm_deploy.graph(), &warm_schedule, &config, iteration);
        assert_eq!(
            fingerprint(&cold_trace),
            fingerprint(&warm_trace),
            "cached deployment diverged from cold at iteration {iteration}"
        );
    }
}

/// The deploy key must split on the cluster shape and the schedule key on
/// the scheduler and its configuration — nothing may alias.
#[test]
fn keys_split_on_cluster_scheduler_and_config() {
    let model = Model::AlexNetV2.build_with_batch(Mode::Training, 2);
    let config = SimConfig::cloud_gpu();
    let registry = Registry::disabled();
    let cache = DeployCache::new();

    let (d21, tic21) = cache
        .schedule(
            &model,
            &ClusterSpec::new(2, 1),
            SchedulerKind::Tic,
            &config,
            &registry,
        )
        .unwrap();
    let (d31, _) = cache
        .schedule(
            &model,
            &ClusterSpec::new(3, 1),
            SchedulerKind::Tic,
            &config,
            &registry,
        )
        .unwrap();
    assert!(
        !std::sync::Arc::ptr_eq(&d21, &d31),
        "different cluster shapes must not share a deployment"
    );
    assert_ne!(d21.graph().len(), d31.graph().len());

    let (d21b, tac21) = cache
        .schedule(
            &model,
            &ClusterSpec::new(2, 1),
            SchedulerKind::Tac,
            &config,
            &registry,
        )
        .unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&d21, &d21b),
        "schedulers share the deployment entry"
    );
    assert!(
        !std::sync::Arc::ptr_eq(&tic21, &tac21),
        "TIC and TAC must occupy distinct schedule entries"
    );

    // A different platform (the scheduling oracle's input) splits the key.
    let seen_misses = cache.stats().schedule_misses;
    let other = SimConfig::cpu_cluster();
    cache
        .schedule(
            &model,
            &ClusterSpec::new(2, 1),
            SchedulerKind::Tac,
            &other,
            &registry,
        )
        .unwrap();
    assert_eq!(
        cache.stats().schedule_misses,
        seen_misses + 1,
        "a different platform config must miss"
    );
}

/// Repeated-deploy microbench: warm hits must be dramatically cheaper than
/// cold computation. The acceptance target is <5% of cold time; the assert
/// leaves a generous margin (50%) so CI noise cannot flake it.
#[test]
fn warm_hits_cost_a_fraction_of_cold_computation() {
    let model = Model::InceptionV3.build_with_batch(Mode::Training, 2);
    let spec = ClusterSpec::new(4, 1);
    let config = SimConfig::cloud_gpu();
    let registry = Registry::disabled();

    let cold_reps = 3;
    let started = Instant::now();
    for _ in 0..cold_reps {
        let cache = DeployCache::new();
        cache
            .schedule(&model, &spec, SchedulerKind::Tic, &config, &registry)
            .unwrap();
    }
    let cold = started.elapsed().as_secs_f64() / cold_reps as f64;

    let cache = DeployCache::new();
    cache
        .schedule(&model, &spec, SchedulerKind::Tic, &config, &registry)
        .unwrap();
    let warm_reps = 30;
    let started = Instant::now();
    for _ in 0..warm_reps {
        cache
            .schedule(&model, &spec, SchedulerKind::Tic, &config, &registry)
            .unwrap();
    }
    let warm = started.elapsed().as_secs_f64() / warm_reps as f64;

    assert!(
        warm < cold * 0.5,
        "warm hit ({warm:.6}s) is not meaningfully cheaper than cold ({cold:.6}s)"
    );
}
