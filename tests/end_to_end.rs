//! Cross-crate integration tests: the full model → cluster → schedule →
//! simulate pipeline.

use tictac::{ClusterSpec, Mode, Model, Platform, SchedulerKind, Session, SimConfig};

fn run(
    model: Model,
    mode: Mode,
    workers: usize,
    ps: usize,
    scheduler: SchedulerKind,
    config: SimConfig,
) -> tictac::RunReport {
    // Small batch keeps debug-mode tests fast without changing structure.
    let graph = model.build_with_batch(mode, 4);
    Session::builder(graph)
        .cluster(ClusterSpec::new(workers, ps))
        .config(config)
        .scheduler(scheduler)
        .warmup(1)
        .iterations(5)
        .build()
        .expect("valid deployment")
        .run()
}

#[test]
fn tic_beats_baseline_on_balanced_configs() {
    for (model, mode) in [
        (Model::ResNet50V1, Mode::Inference),
        (Model::InceptionV1, Mode::Training),
    ] {
        let cfg = SimConfig::cloud_gpu();
        let base = run(model, mode, 4, 1, SchedulerKind::Baseline, cfg.clone());
        let tic = run(model, mode, 4, 1, SchedulerKind::Tic, cfg);
        assert!(
            tic.mean_throughput() > base.mean_throughput(),
            "{model} {mode:?}: tic {} <= baseline {}",
            tic.mean_throughput(),
            base.mean_throughput()
        );
    }
}

#[test]
fn tac_matches_or_beats_tic_closely() {
    // §6/Appendix B: TIC is within a small margin of TAC.
    let cfg = SimConfig::cpu_cluster();
    let tic = run(
        Model::InceptionV2,
        Mode::Inference,
        4,
        1,
        SchedulerKind::Tic,
        cfg.clone(),
    );
    let tac = run(
        Model::InceptionV2,
        Mode::Inference,
        4,
        1,
        SchedulerKind::Tac,
        cfg,
    );
    let ratio = tac.mean_throughput() / tic.mean_throughput();
    assert!(
        (0.9..=1.15).contains(&ratio),
        "TAC/TIC throughput ratio {ratio}"
    );
}

#[test]
fn scheduling_efficiency_approaches_one_under_tic() {
    let report = run(
        Model::InceptionV1,
        Mode::Inference,
        4,
        1,
        SchedulerKind::Tic,
        SimConfig::cloud_gpu(),
    );
    assert!(
        report.mean_efficiency() > 0.9,
        "TIC efficiency {}",
        report.mean_efficiency()
    );
}

#[test]
fn any_fixed_order_reduces_stragglers() {
    // §6.3: enforcing any consistent order reduces the straggler effect,
    // regardless of order quality.
    let cfg = SimConfig::cloud_gpu();
    let base = run(
        Model::ResNet50V1,
        Mode::Training,
        8,
        2,
        SchedulerKind::Baseline,
        cfg.clone(),
    );
    let random = run(
        Model::ResNet50V1,
        Mode::Training,
        8,
        2,
        SchedulerKind::Random,
        cfg,
    );
    assert!(
        random.max_straggler_pct() < base.max_straggler_pct(),
        "random {} vs baseline {}",
        random.max_straggler_pct(),
        base.max_straggler_pct()
    );
}

#[test]
fn noiseless_simulation_is_bounded_by_eq_1_and_2() {
    // With no noise, the measured per-worker makespan must sit between the
    // lower (Equation 2) and upper (Equation 1) bounds — i.e. efficiency
    // within [0, 1] before clamping, for every scheduler.
    let config = SimConfig::deterministic(Platform::cloud_gpu());
    for scheduler in SchedulerKind::ALL {
        let graph = Model::InceptionV1.build_with_batch(Mode::Training, 4);
        let report = Session::builder(graph)
            .cluster(ClusterSpec::new(2, 1))
            .config(config.clone())
            .scheduler(scheduler)
            .warmup(0)
            .iterations(3)
            .build()
            .expect("valid deployment")
            .run();
        for rec in &report.iterations {
            assert!(
                (0.0..=1.0).contains(&rec.efficiency),
                "{scheduler}: efficiency {} out of bounds",
                rec.efficiency
            );
            assert!(rec.speedup_potential >= 0.0);
        }
    }
}

#[test]
fn batch_scaling_changes_the_overlap_tradeoff() {
    // Fig. 10 mechanism: growing the batch grows compute time while
    // transfers stay fixed, so iteration time grows sublinearly when
    // communication dominates.
    let cfg = SimConfig::deterministic(Platform::cloud_gpu());
    let small = {
        let g = Model::Vgg16.build_with_batch(Mode::Inference, 8);
        Session::builder(g)
            .cluster(ClusterSpec::new(4, 1))
            .config(cfg.clone())
            .scheduler(SchedulerKind::Tic)
            .warmup(0)
            .iterations(1)
            .build()
            .expect("valid deployment")
            .run()
            .mean_makespan()
    };
    let large = {
        let g = Model::Vgg16.build_with_batch(Mode::Inference, 16);
        Session::builder(g)
            .cluster(ClusterSpec::new(4, 1))
            .config(cfg)
            .scheduler(SchedulerKind::Tic)
            .warmup(0)
            .iterations(1)
            .build()
            .expect("valid deployment")
            .run()
            .mean_makespan()
    };
    assert!(large > small);
    assert!(
        large.as_nanos() < 2 * small.as_nanos(),
        "doubling batch must not double a comm-bound iteration: {small} -> {large}"
    );
}

#[test]
fn reports_serialize_to_and_from_serde_values() {
    // RunReport is a data structure (C-SERDE); round-trip through a
    // self-describing format-free check via serde's derive.
    let report = run(
        Model::AlexNetV2,
        Mode::Inference,
        2,
        1,
        SchedulerKind::Tic,
        SimConfig::cloud_gpu(),
    );
    // No serde_json in the dependency set; a manual clone-compare checks
    // Serialize/Deserialize derives compile and the type is plain data.
    let cloned = report.clone();
    assert_eq!(report, cloned);
}

#[test]
fn all_reduce_deployment_simulates_and_scales() {
    use tictac::{deploy_all_reduce, no_ordering, simulate};
    let graph = Model::ResNet50V1.build_with_batch(Mode::Training, 8);
    let config = SimConfig::cloud_gpu();
    let mut per_worker_rate = Vec::new();
    for workers in [2usize, 8] {
        let ring = deploy_all_reduce(&graph, workers).expect("valid ring");
        let trace = simulate(ring.graph(), &no_ordering(ring.graph()), &config, 0);
        assert_eq!(trace.executed_ops(), ring.graph().len());
        per_worker_rate.push(1.0 / trace.makespan().as_secs_f64());
    }
    // The ring's per-link volume 2(W-1)/W is nearly constant: per-worker
    // throughput at 8 workers stays within 2x of 2 workers.
    assert!(
        per_worker_rate[1] > per_worker_rate[0] / 2.0,
        "ring failed to scale: {per_worker_rate:?}"
    );
}

#[test]
fn sixteen_worker_cluster_simulates_to_completion() {
    let report = run(
        Model::InceptionV1,
        Mode::Training,
        16,
        4,
        SchedulerKind::Tic,
        SimConfig::cloud_gpu(),
    );
    assert_eq!(report.workers, 16);
    assert_eq!(report.parameter_servers, 4);
    assert!(report.mean_throughput() > 0.0);
}

#[test]
fn noise_free_runs_have_tiny_variance_under_enforced_order() {
    // Enforcement pins the transfer order; the only remaining freedom is
    // the random pop order of (cheap) PS-side read ops, so noise-free
    // iterations agree to well under a percent. (The paper likewise
    // reduces — not eliminates — variance; Fig. 12b.)
    let config = SimConfig::deterministic(Platform::cloud_gpu());
    let graph = Model::AlexNetV2.build_with_batch(Mode::Inference, 4);
    let report = Session::builder(graph)
        .cluster(ClusterSpec::new(2, 1))
        .config(config)
        .scheduler(SchedulerKind::Tic)
        .warmup(0)
        .iterations(4)
        .build()
        .expect("valid deployment")
        .run();
    let min = report.iterations.iter().map(|r| r.makespan).min().unwrap();
    let max = report.iterations.iter().map(|r| r.makespan).max().unwrap();
    let spread = (max.as_nanos() - min.as_nanos()) as f64 / min.as_nanos() as f64;
    assert!(
        spread < 0.01,
        "noise-free enforced runs spread {spread:.4} ({min} .. {max})"
    );
}
