//! Integration tests of the fault-injection and fault-tolerance subsystem:
//! determinism of injected faults, recovery machinery, degraded barriers,
//! and no-deadlock properties under combined reorder errors and
//! retransmits.

use proptest::prelude::*;
use tictac::{
    deploy, no_ordering, simulate, simulate_with_plan, tic, tiny_mlp, try_simulate, ClusterSpec,
    ExecError, FaultCounters, FaultPlan, FaultSpec, Mode, RetryPolicy, SchedulerKind, Session,
    SimConfig, SimDuration, SimError,
};

/// A fault spec exercising every fault class at once, with a retry budget
/// deep enough that recovery always succeeds.
fn stormy() -> FaultSpec {
    FaultSpec::none()
        .with_drop_prob(0.2)
        .with_blackouts(0.4, SimDuration::from_micros(40))
        .with_crashes(0.4, SimDuration::from_micros(60))
        .with_stragglers(0.4, 2.5)
        .with_ps_stalls(0.4, SimDuration::from_micros(50))
        .with_onset_window(SimDuration::from_micros(300))
        .with_retry(RetryPolicy::fixed(SimDuration::from_micros(30), 50))
}

#[test]
fn identical_seed_and_iteration_give_byte_identical_faulty_traces() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(3, 2)).unwrap();
    let cfg = SimConfig::cloud_gpu().with_faults(stormy());
    let s = no_ordering(d.graph());
    for iteration in 0..4 {
        let a = try_simulate(d.graph(), &s, &cfg, iteration).unwrap();
        let b = try_simulate(d.graph(), &s, &cfg, iteration).unwrap();
        assert_eq!(a, b, "iteration {iteration} not reproducible");
    }
    // Distinct iterations draw distinct fault plans and noise.
    let a = try_simulate(d.graph(), &s, &cfg, 0).unwrap();
    let b = try_simulate(d.graph(), &s, &cfg, 1).unwrap();
    assert_ne!(a, b);
    // And a different base seed changes the plan too.
    let reseeded = cfg.clone().with_seed(cfg.seed ^ 0xF00D);
    let c = try_simulate(d.graph(), &s, &reseeded, 0).unwrap();
    assert_ne!(a, c);
}

#[test]
fn explicit_plans_replay_and_quiet_plans_change_nothing() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let cfg = SimConfig::cloud_gpu().with_faults(stormy());
    let s = no_ordering(d.graph());

    // Replay: sampling the plan up front is exactly try_simulate.
    let plan = FaultPlan::sample(&cfg.faults, d.graph(), cfg.seed, 2);
    let a = simulate_with_plan(d.graph(), &s, &cfg, 2, &plan).unwrap();
    let b = try_simulate(d.graph(), &s, &cfg, 2).unwrap();
    assert_eq!(a, b);

    // Quiet: the fault subsystem leaves fault-free traces byte-identical.
    let quiet = SimConfig::cloud_gpu();
    assert!(quiet.faults.is_quiet());
    let clean = simulate(d.graph(), &s, &quiet, 2);
    let via_try = try_simulate(d.graph(), &s, &quiet, 2).unwrap();
    assert_eq!(clean, via_try);
    assert!(clean.fault_events().is_empty());
    assert_eq!(clean.executed_ops(), d.graph().len());
}

#[test]
fn recovery_completes_all_work_and_counters_add_up() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(3, 2)).unwrap();
    let cfg = SimConfig::cloud_gpu().with_faults(stormy());
    let s = no_ordering(d.graph());
    let mut total = FaultCounters::default();
    for iteration in 0..6 {
        let trace = try_simulate(d.graph(), &s, &cfg, iteration).unwrap();
        assert_eq!(
            trace.executed_ops(),
            d.graph().len(),
            "iteration {iteration} left work behind without a barrier"
        );
        total.merge(&FaultCounters::from_trace(&trace));
    }
    assert!(!total.is_clean(), "the storm never hit in 6 iterations");
    // Every detected loss is either retransmitted or the run would have
    // errored; with this budget nothing is abandoned.
    assert_eq!(total.timeouts, total.retransmits);
    assert_eq!(total.deferred_ops, 0);
    assert_eq!(total.degraded_barriers, 0);
}

#[test]
fn degraded_barrier_defers_work_instead_of_erroring() {
    let model = tiny_mlp(Mode::Training, 8);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let barrier = SimDuration::from_micros(400);
    let cfg = SimConfig::cloud_gpu().with_faults(
        FaultSpec::none()
            .with_drop_prob(1.0)
            .with_retry(RetryPolicy::fixed(SimDuration::from_micros(20), 2))
            .with_barrier_timeout(barrier),
    );
    let s = no_ordering(d.graph());
    let trace = try_simulate(d.graph(), &s, &cfg, 0).unwrap();
    assert!(trace.executed_ops() < d.graph().len());
    assert_eq!(trace.makespan(), barrier);
    let counters = FaultCounters::from_trace(&trace);
    assert_eq!(counters.degraded_barriers, 1);
    // Deferred ops are those not *done*; sends that handed off but whose
    // transfer never completed are done yet unrecorded, so the recorded
    // count bounds the deferrals from above.
    assert!(counters.deferred_ops > 0);
    assert!(counters.deferred_ops as usize <= d.graph().len() - trace.executed_ops());

    // The same fault load without the barrier is a typed error end-to-end,
    // surfaced through the Session as well.
    let doomed = Session::builder(tiny_mlp(Mode::Training, 8))
        .cluster(ClusterSpec::new(2, 1))
        .config(
            SimConfig::cloud_gpu().with_faults(
                FaultSpec::none()
                    .with_drop_prob(1.0)
                    .with_retry(RetryPolicy::fixed(SimDuration::from_micros(20), 2)),
            ),
        )
        .scheduler(SchedulerKind::Baseline)
        .warmup(0)
        .iterations(1)
        .build()
        .unwrap();
    match doomed.try_run() {
        Err(ExecError::Sim(SimError::RetriesExhausted { attempts, .. })) => assert_eq!(attempts, 3),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sender-side enforcement counters plus reorder errors plus
    /// timeout-driven retransmits must never deadlock: every run either
    /// completes all ops or degrades at a barrier — with this retry
    /// budget, it completes.
    #[test]
    fn enforcement_with_reorder_errors_and_drops_never_deadlocks(
        workers in 1usize..4,
        servers in 1usize..3,
        drop in 0.0f64..0.35,
        reorder in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(workers, servers)).unwrap();
        let cfg = SimConfig::cloud_gpu()
            .with_seed(seed)
            .with_reorder_error(reorder)
            .with_faults(
                FaultSpec::none()
                    .with_drop_prob(drop)
                    .with_retry(RetryPolicy::fixed(SimDuration::from_micros(25), 60)),
            );
        // An enforced TIC schedule stresses the counters the hardest.
        let s = d.replicate_schedule(&tic(d.graph(), d.workers()[0]));
        let trace = try_simulate(d.graph(), &s, &cfg, 1).unwrap();
        prop_assert_eq!(trace.executed_ops(), d.graph().len());
    }

    /// Full-storm determinism: same (seed, iteration, spec) is always
    /// byte-identical, whatever combination of faults fires.
    #[test]
    fn faulty_simulation_is_deterministic(
        seed in any::<u64>(),
        iteration in 0u64..32,
    ) {
        let model = tiny_mlp(Mode::Training, 8);
        let d = deploy(&model, &ClusterSpec::new(2, 2)).unwrap();
        let cfg = SimConfig::cloud_gpu().with_seed(seed).with_faults(stormy());
        let s = no_ordering(d.graph());
        let a = try_simulate(d.graph(), &s, &cfg, iteration).unwrap();
        let b = try_simulate(d.graph(), &s, &cfg, iteration).unwrap();
        prop_assert_eq!(a, b);
    }
}
