//! Golden-trace regression tests for the simulation engine.
//!
//! The engine's randomized picks (ready-queue pops, channel queue pops,
//! reorder errors, noise, fault drops) are part of its reproducibility
//! contract: for a fixed `(seed, iteration)` the RNG draw order — and so
//! the produced trace — must never change across refactors. These tests
//! pin a fingerprint of the full trace (every op interval, every fault
//! event, the makespan) for a spread of scenarios covering all random
//! paths: baseline random pops, enforced rank order with reorder errors,
//! the disorder window, and a faulty run with drops, crashes and
//! retransmits.
//!
//! The expected values were captured from the seed engine (PR 1) and gate
//! the hot-loop rewrite: byte-identical traces or bust. If one of these
//! ever fails, the engine's draw-order compatibility contract is broken —
//! fix the engine, do not re-pin, unless the break is deliberate and
//! documented in DESIGN.md §7.
//!
//! Run with `GOLDEN_PRINT=1 cargo test -q --test golden_traces -- --nocapture`
//! to print current fingerprints (for deliberate re-pinning).

use tictac::{
    deploy, no_ordering, simulate, tic, try_simulate, ClusterSpec, ExecutionTrace, FaultSpec, Mode,
    Model, RetryPolicy, SimConfig, SimDuration,
};
use tictac_models::tiny_mlp;

/// FNV-1a over every op interval (in op-id order), fault event and the
/// makespan. Any change to any byte of the trace changes the fingerprint.
fn fingerprint(trace: &ExecutionTrace) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: &mut u64, v: u64) {
        for byte in v.to_le_bytes() {
            *h ^= byte as u64;
            *h = h.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for i in 0..trace.len() {
        match trace.record(tictac::OpId::from_index(i)) {
            Some(r) => {
                mix(&mut h, i as u64);
                mix(&mut h, r.start.as_nanos());
                mix(&mut h, r.end.as_nanos());
            }
            None => mix(&mut h, u64::MAX),
        }
    }
    for ev in trace.fault_events() {
        mix(&mut h, ev.at.as_nanos());
        for byte in format!("{:?}", ev.kind).bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    mix(&mut h, trace.makespan().as_nanos());
    h
}

fn check(name: &str, trace: &ExecutionTrace, expected: u64) {
    let got = fingerprint(trace);
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("golden {name}: 0x{got:016x}");
        return;
    }
    assert_eq!(
        got, expected,
        "{name}: trace fingerprint drifted (got 0x{got:016x}, pinned 0x{expected:016x}) — \
         the engine's RNG draw-order contract is broken"
    );
}

/// Baseline (no ranks anywhere): exercises the uniform random channel pops
/// and random ready-queue pops under the default disorder window.
#[test]
fn golden_baseline_tiny_mlp() {
    let d = deploy(&tiny_mlp(Mode::Training, 8), &ClusterSpec::new(3, 2)).unwrap();
    let cfg = SimConfig::cloud_gpu();
    let s = no_ordering(d.graph());
    check(
        "baseline_tiny_mlp_it0",
        &simulate(d.graph(), &s, &cfg, 0),
        0x01103a4f256db1dc,
    );
    check(
        "baseline_tiny_mlp_it7",
        &simulate(d.graph(), &s, &cfg, 7),
        0x7879c429bf48428e,
    );
}

/// Enforced TIC order: exercises the ranked fast path, sender-side
/// counters and the reorder-error draws (0.5% per pick, cloud_gpu).
#[test]
fn golden_tic_enforced_inception() {
    let model = Model::InceptionV1.build_with_batch(Mode::Inference, 4);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let cfg = SimConfig::cloud_gpu();
    let s = d.replicate_schedule(&tic(d.graph(), d.workers()[0]));
    check(
        "tic_inception_v1_it0",
        &simulate(d.graph(), &s, &cfg, 0),
        0xcd2bf2f7a4703836,
    );
    check(
        "tic_inception_v1_it3",
        &simulate(d.graph(), &s, &cfg, 3),
        0x618b11902a8e0f54,
    );
}

/// Baseline on a bigger model: long channel queues, heavy disorder-window
/// indexing.
#[test]
fn golden_baseline_resnet() {
    let model = Model::ResNet50V1.build_with_batch(Mode::Training, 2);
    let d = deploy(&model, &ClusterSpec::new(2, 1)).unwrap();
    let cfg = SimConfig::cloud_gpu();
    let s = no_ordering(d.graph());
    check(
        "baseline_resnet50_it1",
        &simulate(d.graph(), &s, &cfg, 1),
        0x0884a065410d6866,
    );
}

/// Faulty run: transfer drops, worker crashes, retransmit timeouts — the
/// fault event stream and recovery scheduling must replay exactly.
#[test]
fn golden_faulty_run() {
    let d = deploy(&tiny_mlp(Mode::Training, 8), &ClusterSpec::new(2, 1)).unwrap();
    let cfg = SimConfig::cloud_gpu().with_faults(
        FaultSpec::none()
            .with_drop_prob(0.2)
            .with_crashes(0.5, SimDuration::from_millis(10))
            .with_retry(RetryPolicy::fixed(SimDuration::from_millis(5), 30)),
    );
    let s = no_ordering(d.graph());
    let trace = try_simulate(d.graph(), &s, &cfg, 3).unwrap();
    // Re-pinned when drop decisions moved from a sequential RNG stream to
    // the keyed per-(op, attempt) hash shared with the threaded runtime.
    check("faulty_tiny_mlp_it3", &trace, 0x493830cc7b55cf35);
}

/// Degraded barrier: every transfer dropped, barrier absorbs the loss.
#[test]
fn golden_degraded_barrier() {
    let d = deploy(&tiny_mlp(Mode::Training, 8), &ClusterSpec::new(2, 1)).unwrap();
    let cfg = SimConfig::cloud_gpu().with_faults(
        FaultSpec::none()
            .with_drop_prob(1.0)
            .with_retry(RetryPolicy::fixed(SimDuration::from_millis(1), 2))
            .with_barrier_timeout(SimDuration::from_millis(400)),
    );
    let s = no_ordering(d.graph());
    let trace = try_simulate(d.graph(), &s, &cfg, 0).unwrap();
    check("degraded_barrier_it0", &trace, 0x5e8737d0047e993a);
}
