//! Heterogeneous-cluster guarantees:
//!
//! 1. Uniformity is byte-exact: a cluster built with explicit all-unit
//!    speed/bandwidth vectors is *indistinguishable* from one that never
//!    mentioned heterogeneity — same deployed graph, same schedule, and
//!    bit-for-bit identical iteration metrics (property-tested across
//!    shapes, schedulers and seeds).
//! 2. Heterogeneity matters and scheduling helps: a straggler device
//!    (half compute speed behind a quarter-bandwidth uplink) slows the
//!    uniform iteration down, and TAC's profiled schedule beats the
//!    baseline's arbitrary transfer order on that degraded cluster.

use proptest::prelude::*;
use tictac::{tiny_mlp, ClusterSpec, Mode, Model, ModelGraph, SchedulerKind, Session, SimConfig};

fn run_model(
    model: ModelGraph,
    cluster: ClusterSpec,
    kind: SchedulerKind,
    seed: u64,
) -> tictac::RunReport {
    Session::builder(model)
        .cluster(cluster)
        .config(SimConfig::cloud_gpu().with_seed(seed))
        .scheduler(kind)
        .warmup(1)
        .iterations(3)
        .build()
        .expect("valid deployment")
        .run()
}

fn run(cluster: ClusterSpec, kind: SchedulerKind, seed: u64) -> tictac::RunReport {
    run_model(tiny_mlp(Mode::Training, 8), cluster, kind, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All-unit factor vectors are normalized away: schedules and
    /// iteration records reproduce bit-for-bit against the spec that
    /// never specified factors.
    #[test]
    fn unit_factors_reproduce_uniform_runs_bit_for_bit(
        workers in 1usize..4,
        ps in 1usize..3,
        kind_ix in 0usize..4,
        seed in 0u64..3,
    ) {
        let kind = SchedulerKind::ALL[kind_ix];
        let plain = ClusterSpec::new(workers, ps);
        let unit = ClusterSpec::builder()
            .workers(workers)
            .parameter_servers(ps)
            .worker_speeds(vec![1.0; workers])
            .ps_speeds(vec![1.0; ps])
            .link_bandwidths(vec![1.0; workers * ps])
            .build()
            .expect("unit factors are valid");
        prop_assert_eq!(&plain, &unit);
        prop_assert!(unit.is_uniform());
        let a = run(plain, kind, seed);
        let b = run(unit, kind, seed);
        // PartialEq on the reports compares every f64 exactly — this is
        // bit-for-bit identity, not approximate equality.
        prop_assert_eq!(a.iterations, b.iterations);
    }
}

/// A straggler device slows the whole synchronous iteration down, and
/// TAC's profiled schedule recovers part of the loss over the baseline.
#[test]
fn tac_beats_baseline_on_a_straggler_device() {
    let straggler = || {
        ClusterSpec::builder()
            .workers(4)
            .parameter_servers(1)
            .worker_speeds(vec![1.0, 1.0, 1.0, 0.5])
            .link_bandwidths(vec![1.0, 1.0, 1.0, 0.25])
            .build()
            .expect("valid straggler cluster")
    };
    // A deep model whose long transfer chain gives the scheduler room to
    // reorder (§6.1) — on tiny graphs there is nothing to rearrange.
    let model = || Model::ResNet50V1.build_with_batch(Mode::Inference, 4);
    let uniform = run_model(model(), ClusterSpec::new(4, 1), SchedulerKind::Baseline, 0);
    let baseline = run_model(model(), straggler(), SchedulerKind::Baseline, 0);
    let tac = run_model(model(), straggler(), SchedulerKind::Tac, 0);

    // The slow device stretches the synchronous step.
    assert!(
        baseline.mean_makespan() > uniform.mean_makespan(),
        "straggler cluster must be slower than uniform: {} vs {}",
        baseline.mean_makespan(),
        uniform.mean_makespan()
    );
    // TAC's transfer order beats the baseline's on the degraded cluster.
    assert!(
        tac.mean_makespan() < baseline.mean_makespan(),
        "TAC must beat baseline on the straggler cluster: {} vs {}",
        tac.mean_makespan(),
        baseline.mean_makespan()
    );
}
