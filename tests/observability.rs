//! Cross-crate observability contract tests.
//!
//! Three invariants gate this layer:
//!
//! 1. **Transparency** — attaching an (enabled or disabled) metrics
//!    registry never changes a simulated outcome: traces are equal op
//!    for op, byte for byte.
//! 2. **Fidelity** — analyzers recomputed from observed traces agree
//!    with the quantities the session already reports, and fault
//!    counters rebuilt from the Perfetto export equal the trace-derived
//!    ones for every `FaultEventKind` variant.
//! 3. **Paper semantics** — under TAC enforcement with in-order
//!    channels no transfer ever starts while a higher-priority transfer
//!    is runnable on the same channel, while the unscheduled baseline
//!    inverts on nearly every zoo model.

use tictac::{
    priority_inversions, realized_efficiency, simulate, try_simulate_observed, ClusterSpec,
    FaultCounters, FaultEventKind, Mode, Model, OpId, Registry, SchedulerKind, Session, SimConfig,
    TraceBuilder,
};
use tictac_models::tiny_mlp;
use tictac_timing::SimTime;

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

/// One fault event of every variant, with distinct multiplicities so a
/// transposed counter cannot cancel out: variant k appears k+1 times.
fn every_variant() -> Vec<FaultEventKind> {
    use tictac::{ChannelId, DeviceId};
    let op = OpId::from_index(0);
    let ch = ChannelId::from_index(0);
    let dev = DeviceId::from_index(0);
    let variants = [
        FaultEventKind::TransferDropped { op, attempt: 0 },
        FaultEventKind::TransferTimeout { op, attempt: 0 },
        FaultEventKind::Retransmit { op, attempt: 1 },
        FaultEventKind::BlackoutStart { channel: ch },
        FaultEventKind::BlackoutEnd { channel: ch },
        FaultEventKind::WorkerCrashed { device: dev },
        FaultEventKind::WorkerRecovered { device: dev },
        FaultEventKind::PsStallStart { device: dev },
        FaultEventKind::PsStallEnd { device: dev },
        FaultEventKind::StragglerApplied { device: dev },
        FaultEventKind::DeferredOp { op },
        FaultEventKind::BarrierDegraded { remaining: 3 },
    ];
    let mut events = Vec::new();
    for (k, v) in variants.iter().enumerate() {
        for _ in 0..=k {
            events.push(*v);
        }
    }
    events
}

#[test]
fn fault_counters_cover_every_variant() {
    let mut tb = TraceBuilder::new(0);
    for kind in every_variant() {
        tb.push_fault(t(1), kind);
    }
    let trace = tb.finish();
    let c = FaultCounters::from_trace(&trace);
    // Multiplicity k+1 per variant, in declaration order.
    assert_eq!(c.drops, 1);
    assert_eq!(c.timeouts, 2);
    assert_eq!(c.retransmits, 3);
    assert_eq!(c.blackouts, 4);
    // BlackoutEnd (5 events) must not increment anything.
    assert_eq!(c.crashes, 6);
    // WorkerRecovered (7 events) must not increment anything.
    assert_eq!(c.ps_stalls, 8);
    // PsStallEnd (9 events) must not increment anything.
    assert_eq!(c.stragglers, 10);
    assert_eq!(c.deferred_ops, 11);
    assert_eq!(c.degraded_barriers, 12);
    let total_counted: u64 = c.drops
        + c.timeouts
        + c.retransmits
        + c.blackouts
        + c.crashes
        + c.ps_stalls
        + c.stragglers
        + c.deferred_ops
        + c.degraded_barriers;
    // 78 events in all; the three End/Recovered variants (5 + 7 + 9)
    // are observed but never counted.
    assert_eq!(trace.fault_events().len(), 78);
    assert_eq!(total_counted, 78 - (5 + 7 + 9));
}

#[test]
fn perfetto_export_round_trips_fault_counters() {
    // A real graph so every instant resolves to a lane, with every
    // fault variant layered on top.
    let deployed = tictac::deploy(&tiny_mlp(Mode::Training, 4), &ClusterSpec::new(2, 1)).unwrap();
    let g = deployed.graph();
    let mut tb = TraceBuilder::new(g.len());
    for (id, _) in g.ops() {
        tb.record(id, t(0), t(100));
    }
    for (i, kind) in every_variant().into_iter().enumerate() {
        tb.push_fault(t(10 + i as u64), kind);
    }
    let trace = tb.finish();
    let json = tictac::perfetto_json(g, &trace, "round trip");
    let stats = tictac::validate_perfetto(&json).expect("valid trace_event JSON");
    assert_eq!(stats.instants, 78);
    let rebuilt = FaultCounters::from_event_names(stats.fault_names.iter().map(String::as_str));
    assert_eq!(rebuilt, FaultCounters::from_trace(&trace));
    assert!(!rebuilt.is_clean());
}

#[test]
fn observation_is_transparent_at_zoo_scale() {
    // Same trace with a disabled registry, an enabled registry, and the
    // plain entry point — including on a faulty, enforced run where
    // every engine hook fires.
    let deployed = tictac::deploy(
        &Model::AlexNetV2.build_with_batch(Mode::Training, 2),
        &ClusterSpec::new(2, 1),
    )
    .unwrap();
    let g = deployed.graph();
    let schedule = deployed.replicate_schedule(&tictac::tic(g, deployed.workers()[0]));
    for config in
        [
            SimConfig::cloud_gpu(),
            SimConfig::cloud_gpu().with_faults(
                tictac::FaultSpec::none().with_drop_prob(0.2).with_retry(
                    tictac::RetryPolicy::fixed(tictac::SimDuration::from_micros(50), 40),
                ),
            ),
        ]
    {
        let plain = simulate(g, &schedule, &config, 7);
        let registry = Registry::enabled();
        let observed = try_simulate_observed(g, &schedule, &config, 7, &registry).unwrap();
        let disabled =
            try_simulate_observed(g, &schedule, &config, 7, &Registry::disabled()).unwrap();
        assert_eq!(plain, observed);
        assert_eq!(plain, disabled);
        assert!(registry.snapshot().counter("sim.events").unwrap() > 0);
    }
}

#[test]
fn realized_efficiency_agrees_with_session_report() {
    for kind in [
        SchedulerKind::Baseline,
        SchedulerKind::Tic,
        SchedulerKind::Tac,
    ] {
        let session = Session::builder(tiny_mlp(Mode::Training, 8))
            .cluster(ClusterSpec::new(2, 1))
            .config(SimConfig::cloud_gpu())
            .scheduler(kind)
            .warmup(0)
            .iterations(1)
            .build()
            .unwrap();
        let report = session.run();
        let trace = session.trace_iteration(0).unwrap();
        let realized = realized_efficiency(session.deployed().graph(), &trace);
        assert_eq!(
            realized.efficiency, report.iterations[0].efficiency,
            "{kind}: analyzer disagrees with the session's Equation 3"
        );
        assert_eq!(
            realized.speedup_potential, report.iterations[0].speedup_potential,
            "{kind}: analyzer disagrees with the session's Equation 4"
        );
    }
}

#[test]
fn tac_enforcement_eliminates_priority_inversions_across_the_zoo() {
    // In-order channels (reorder_error = 0): under TAC enforcement no
    // transfer may start while a higher-ranked one is runnable on the
    // same channel. The unscheduled baseline, judged against the same
    // TAC ranks, must invert on at least 8 of the 10 zoo models.
    let config = SimConfig::cloud_gpu().with_reorder_error(0.0);
    let mut baseline_inverting = 0usize;
    for &model in Model::ALL.iter() {
        let tac_session = Session::builder(model.build_with_batch(Mode::Training, 2))
            .cluster(ClusterSpec::new(2, 1))
            .config(config.clone())
            .scheduler(SchedulerKind::Tac)
            .build()
            .unwrap();
        let g = tac_session.deployed().graph();
        let ranks = tac_session.schedule();
        let enforced = tac_session.trace_iteration(0).unwrap();
        assert_eq!(
            priority_inversions(g, &enforced, |op| ranks.priority(op)).count(),
            0,
            "{}: TAC enforcement produced a priority inversion",
            model.name()
        );

        let baseline = Session::builder(model.build_with_batch(Mode::Training, 2))
            .cluster(ClusterSpec::new(2, 1))
            .config(config.clone())
            .scheduler(SchedulerKind::Baseline)
            .build()
            .unwrap();
        // Deployment is deterministic, so TAC's ranks index the same ops.
        let unordered = baseline.trace_iteration(0).unwrap();
        if priority_inversions(g, &unordered, |op| ranks.priority(op)).count() > 0 {
            baseline_inverting += 1;
        }
    }
    assert!(
        baseline_inverting >= 8,
        "only {baseline_inverting}/10 zoo models invert under the unscheduled baseline"
    );
}

#[test]
fn observed_efficiency_orders_schedulers() {
    // Realized efficiency from observed traces must reproduce the
    // paper's ordering on average: TAC >= TIC >= unscheduled.
    let config = SimConfig::cloud_gpu().with_reorder_error(0.0);
    let models = [Model::AlexNetV2, Model::InceptionV1, Model::Vgg16];
    let mean_of = |kind: SchedulerKind| -> f64 {
        let mut sum = 0.0;
        for &model in &models {
            let s = Session::builder(model.build_with_batch(Mode::Training, 2))
                .cluster(ClusterSpec::new(2, 1))
                .config(config.clone())
                .scheduler(kind)
                .build()
                .unwrap();
            let trace = s.trace_iteration(0).unwrap();
            sum += realized_efficiency(s.deployed().graph(), &trace).efficiency;
        }
        sum / models.len() as f64
    };
    let base = mean_of(SchedulerKind::Baseline);
    let tic = mean_of(SchedulerKind::Tic);
    let tac = mean_of(SchedulerKind::Tac);
    assert!(
        tac >= tic && tic >= base,
        "efficiency ordering violated: baseline {base:.3}, tic {tic:.3}, tac {tac:.3}"
    );
}
