//! Structured-name fidelity over the full model zoo.
//!
//! Deployment mints compact [`OpName`]s instead of heap strings; the
//! rendered display names must still be **byte-identical** to the legacy
//! `format!` patterns (`ps{shard}/send/{param}/w{worker}`, …) that the
//! golden traces and the Perfetto snapshot were pinned against. These
//! tests reconstruct the expected string for every op of every zoo model
//! from independent metadata — op kind, device membership, channel
//! endpoints, parameter names and model-op order — and compare it to
//! [`Graph::op_name`]. They also check that both lookup paths
//! ([`Graph::find_op`] by rendered string, [`Graph::find_op_structured`]
//! by compact name) resolve every op.

use std::collections::HashMap;
use tictac::{
    deploy, ClusterSpec, Cost, DeployedModel, DeviceId, GraphBuilder, Mode, Model, ModelGraph,
    OpId, OpKind, OpName,
};

/// Rebuilds the legacy `format!` name of `id` without consulting the
/// rendering path. `compute_seq` tracks, per worker, how many compute ops
/// have been seen so far in id order — deployment replicates model ops in
/// order, so that count indexes straight into `model.ops()`.
fn legacy_name(
    d: &DeployedModel,
    model: &ModelGraph,
    id: OpId,
    compute_seq: &mut HashMap<DeviceId, usize>,
) -> String {
    let graph = d.graph();
    let op = graph.op(id);
    let dev = op.device();
    let widx: HashMap<DeviceId, u32> = d
        .workers()
        .iter()
        .enumerate()
        .map(|(i, &dv)| (dv, i as u32))
        .collect();
    let sidx: HashMap<DeviceId, u32> = d
        .parameter_servers()
        .iter()
        .enumerate()
        .map(|(i, &dv)| (dv, i as u32))
        .collect();
    let pname = |p| graph.param(p).name();
    match op.kind() {
        OpKind::Compute => {
            let seq = compute_seq.entry(dev).or_insert(0);
            let mop = &model.ops()[*seq];
            *seq += 1;
            format!("w{}/{}", widx[&dev], mop.name())
        }
        OpKind::Read { param } => format!("ps{}/read/{}", sidx[&dev], pname(param)),
        OpKind::Send { param, channel } => {
            if let Some(&s) = sidx.get(&dev) {
                let w = widx[&graph.channel(channel).worker()];
                format!("ps{s}/send/{}/w{w}", pname(param))
            } else {
                format!("w{}/send_grad/{}", widx[&dev], pname(param))
            }
        }
        OpKind::Recv { param, channel } => {
            if let Some(&w) = widx.get(&dev) {
                format!("w{w}/recv/{}", pname(param))
            } else {
                let w = widx[&graph.channel(channel).worker()];
                format!("ps{}/recv_grad/{}/w{w}", sidx[&dev], pname(param))
            }
        }
        OpKind::Aggregate { param } => format!("ps{}/aggregate/{}", sidx[&dev], pname(param)),
        OpKind::Update { param } => format!("ps{}/update/{}", sidx[&dev], pname(param)),
    }
}

/// Checks every op of one deployment: rendered name matches the legacy
/// reconstruction, and both lookup paths resolve back to the op.
fn check_deployment(model: &ModelGraph, spec: &ClusterSpec) {
    let d = deploy(model, spec).expect("zoo model deploys");
    let graph = d.graph();
    let mut compute_seq = HashMap::new();
    for id in graph.op_ids() {
        let expect = legacy_name(&d, model, id, &mut compute_seq);
        let rendered = graph.op_name(id);
        assert_eq!(
            rendered,
            expect,
            "op {id} of {} on {spec:?} renders differently from the legacy format!",
            model.name()
        );
        assert_eq!(
            graph.find_op(rendered),
            Some(id),
            "string lookup missed {rendered}"
        );
        assert_eq!(
            graph.find_op_structured(graph.op(id).op_name()),
            Some(id),
            "structured lookup missed {rendered}"
        );
    }
    assert_eq!(graph.find_op("no/such/op"), None);
}

/// Every zoo model, training mode, across several cluster shapes: all
/// eight PS/worker name patterns are exercised (read, send, recv,
/// compute, send_grad, recv_grad, aggregate, update).
#[test]
fn rendered_names_match_legacy_strings_for_training_zoo() {
    for model in Model::ALL {
        let graph = model.build_with_batch(Mode::Training, 2);
        for (w, s) in [(1, 1), (2, 1), (3, 2)] {
            check_deployment(&graph, &ClusterSpec::new(w, s));
        }
    }
}

/// Inference deployments only exercise the forward patterns, but with a
/// wider fan-out (more workers than shards and vice versa).
#[test]
fn rendered_names_match_legacy_strings_for_inference_zoo() {
    for model in Model::ALL {
        let graph = model.build_with_batch(Mode::Inference, 2);
        check_deployment(&graph, &ClusterSpec::new(4, 2));
    }
}

/// Hand-built graphs go through [`OpName::Raw`]: the builder interns the
/// string verbatim and both lookups resolve it.
#[test]
fn raw_names_round_trip_through_the_interner() {
    let mut b = GraphBuilder::new();
    let w = b.add_worker("w0");
    let a = b.add_op("alpha", w, OpKind::Compute, Cost::flops(1.0), &[]);
    let z = b.add_op("omega", w, OpKind::Compute, Cost::flops(1.0), &[a]);
    let graph = b.build().unwrap();

    assert_eq!(graph.op_name(a), "alpha");
    assert_eq!(graph.find_op("alpha"), Some(a));
    assert_eq!(graph.find_op("omega"), Some(z));
    let id = graph.names().lookup("omega").expect("interned");
    assert_eq!(graph.find_op_structured(OpName::Raw(id)), Some(z));
    assert_eq!(graph.find_op("alph"), None);
}
