//! End-to-end reproductions of the paper's worked examples and headline
//! observations, exercised through the public API.

use tictac::{
    deploy, no_ordering, simulate, tac_order, tic, ClusterSpec, Cost, CostOracle, GraphBuilder,
    Mode, Model, OpKind, Platform, SimConfig,
};

/// Figure 1: with two equal transfers feeding a compute chain, delivering
/// `recv1` first (Figure 1b) beats delivering `recv2` first (Figure 1c),
/// and TAC picks the good order.
#[test]
fn figure_1_good_vs_bad_order() {
    let mut b = GraphBuilder::new();
    let w = b.add_worker("w0");
    let ps = b.add_parameter_server("ps0");
    let ch = b.add_channel(w, ps);
    let mb = 4 << 20;
    let p1 = b.add_param("p1", mb);
    let p2 = b.add_param("p2", mb);
    let read1 = b.add_op(
        "read1",
        ps,
        OpKind::Read { param: p1 },
        Cost::flops(1.0),
        &[],
    );
    let read2 = b.add_op(
        "read2",
        ps,
        OpKind::Read { param: p2 },
        Cost::flops(1.0),
        &[],
    );
    let s1 = b.add_op("send1", ps, OpKind::send(p1, ch), Cost::bytes(mb), &[read1]);
    let s2 = b.add_op("send2", ps, OpKind::send(p2, ch), Cost::bytes(mb), &[read2]);
    let r1 = b.add_op("recv1", w, OpKind::recv(p1, ch), Cost::bytes(mb), &[s1]);
    let r2 = b.add_op("recv2", w, OpKind::recv(p2, ch), Cost::bytes(mb), &[s2]);
    let op1 = b.add_op("op1", w, OpKind::Compute, Cost::flops(5e9), &[r1]);
    b.add_op("op2", w, OpKind::Compute, Cost::flops(5e9), &[op1, r2]);
    let g = b.build().unwrap();

    let cfg = SimConfig::deterministic(Platform::cloud_gpu());
    let mut good = no_ordering(&g);
    good.set(r1, 0);
    good.set(r2, 1);
    let mut bad = no_ordering(&g);
    bad.set(r1, 1);
    bad.set(r2, 0);
    let t_good = simulate(&g, &good, &cfg, 0).makespan();
    let t_bad = simulate(&g, &bad, &cfg, 0).makespan();
    assert!(t_good < t_bad, "good {t_good} vs bad {t_bad}");

    // TAC derives the good order.
    let oracle = CostOracle::new(Platform::cloud_gpu());
    assert_eq!(tac_order(&g, w, &oracle), vec![r1, r2]);
}

/// §2.2: the baseline's parameter-arrival order essentially never repeats
/// for models with hundreds of parameters; TIC pins it exactly.
#[test]
fn section_2_2_random_vs_enforced_orders() {
    let model = Model::InceptionV1.build_with_batch(Mode::Inference, 2);
    let deployed = deploy(&model, &ClusterSpec::new(1, 1)).unwrap();
    let g = deployed.graph();
    let w = deployed.workers()[0];
    let cfg = SimConfig::cloud_gpu();

    let unordered = no_ordering(g);
    let mut seen = std::collections::HashSet::new();
    for i in 0..20 {
        seen.insert(simulate(g, &unordered, &cfg, i).recv_completion_order(g, w));
    }
    assert_eq!(seen.len(), 20, "baseline orders should not repeat");

    let schedule = deployed.replicate_schedule(&tic(g, w));
    let cfg_exact = cfg.with_reorder_error(0.0);
    let mut tic_orders = std::collections::HashSet::new();
    for i in 0..5 {
        tic_orders.insert(simulate(g, &schedule, &cfg_exact, i).recv_completion_order(g, w));
    }
    assert_eq!(tic_orders.len(), 1, "TIC must fix the order");
}

/// §5.1: the gRPC reorder error stays small under the default
/// configuration — the fraction of out-of-order completions is well under
/// 1 percent, as the paper measured (0.4–0.5%).
#[test]
fn enforcement_error_rate_is_paper_scale() {
    let model = Model::InceptionV3.build_with_batch(Mode::Inference, 2);
    let deployed = deploy(&model, &ClusterSpec::new(1, 1)).unwrap();
    let g = deployed.graph();
    let w = deployed.workers()[0];
    let schedule = deployed.replicate_schedule(&tic(g, w));
    let cfg = SimConfig::cloud_gpu(); // reorder_error = 0.005

    // Count adjacent priority inversions in the completion order: each
    // reorder event at the channel produces one inversion.
    let mut out_of_order = 0usize;
    let mut total = 0usize;
    for i in 0..10 {
        let order = simulate(g, &schedule, &cfg, i).recv_completion_order(g, w);
        total += order.len();
        out_of_order += order
            .windows(2)
            .filter(|pair| schedule.priority(pair[0]) > schedule.priority(pair[1]))
            .count();
    }
    let rate = out_of_order as f64 / total as f64;
    assert!(
        rate < 0.02,
        "out-of-order rate {rate} too high (paper: 0.004-0.005)"
    );
}

/// Fig. 8: a real SGD learner converges identically with and without
/// enforced ordering.
#[test]
fn figure_8_ordering_does_not_change_loss() {
    use tictac::training::{loss_curve, TrainingConfig};
    let cfg = TrainingConfig::default();
    let a = loss_curve(cfg, true, 50);
    let b = loss_curve(cfg, false, 50);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-9, "{x} vs {y}");
    }
    assert!(a[49] < a[0], "loss should decrease");
}

/// Table 1: every generator reproduces the paper's parameter census.
#[test]
fn table_1_parameter_census() {
    for model in Model::ALL {
        let built = model.build_with_batch(Mode::Inference, 1);
        assert_eq!(built.params().len(), model.paper_row().params, "{model}");
        let rel = (built.stats().param_mib() - model.paper_row().param_mib).abs()
            / model.paper_row().param_mib;
        assert!(rel < 0.15, "{model} size off by {:.1}%", rel * 100.0);
    }
}
