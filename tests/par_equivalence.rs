//! Parallel-engine equivalence suite: the conservatively partitioned
//! parallel engine must be trace-equivalent to the sequential oracle.
//!
//! "Trace-equivalent" is the metric/analyzer bar documented in
//! `tictac_sim::par`: identical [`IterationMetrics`] and identical
//! analyzer outputs (overlap report, realized efficiency, priority
//! inversions). Byte-identical traces are *not* required — partitions
//! that complete ops at the same simulated instant may record them in a
//! different (but equally legal) order, and every derived quantity is
//! invariant under that permutation.
//!
//! Three families of checks:
//!
//! * **Zoo coverage**: every model of the 10-model zoo, deployed at
//!   several worker/shard shapes up to 16 workers, under both the random
//!   baseline and enforced TIC/TAC schedules.
//! * **Property-based**: random layered models × random small cluster
//!   shapes × seeds, through the same comparison.
//! * **Auto-selection**: `simulate` switches engines at the configured
//!   threshold, and a `Session` above the threshold produces the same
//!   report as one pinned to the sequential oracle.

use proptest::prelude::*;
use tictac::{
    analyze, deploy, no_ordering, overlap_report, priority_inversions, realized_efficiency,
    selected_engine, simulate, tac, tic, ClusterSpec, CostOracle, EngineChoice, Mode, Model,
    ModelGraph, Platform, Schedule, Session, SimConfig,
};
use tictac_graph::{Graph, ModelGraphBuilder, ModelOpId, ModelOpKind};

/// A parallel-safe deterministic config that *forces* the parallel engine
/// (threshold 1) — the sequential run pins the oracle with threshold
/// `None`.
fn forced_par() -> SimConfig {
    SimConfig::deterministic(Platform::cloud_gpu())
        .with_disorder_window(Some(1))
        .with_par_threshold(Some(1))
}

/// Asserts the parallel engine is trace-equivalent to the sequential
/// oracle for one `(graph, schedule)` under [`forced_par`].
fn assert_equivalent(graph: &Graph, workers: &[tictac::DeviceId], schedule: &Schedule, tag: &str) {
    let par_cfg = forced_par();
    let seq_cfg = par_cfg.clone().with_par_threshold(None);
    assert_eq!(
        selected_engine(graph, &par_cfg),
        EngineChoice::Parallel,
        "{tag}"
    );
    assert_eq!(
        selected_engine(graph, &seq_cfg),
        EngineChoice::Sequential,
        "{tag}"
    );
    let par = simulate(graph, schedule, &par_cfg, 0);
    let seq = simulate(graph, schedule, &seq_cfg, 0);
    assert_eq!(par.executed_ops(), graph.len(), "{tag}: par completes");
    assert_eq!(par.makespan(), seq.makespan(), "{tag}: makespan");
    assert_eq!(
        analyze(graph, workers, &par),
        analyze(graph, workers, &seq),
        "{tag}: iteration metrics"
    );
    assert_eq!(
        overlap_report(graph, &par),
        overlap_report(graph, &seq),
        "{tag}: overlap report"
    );
    assert_eq!(
        realized_efficiency(graph, &par),
        realized_efficiency(graph, &seq),
        "{tag}: realized efficiency"
    );
    assert_eq!(
        priority_inversions(graph, &par, |op| schedule.priority(op)),
        priority_inversions(graph, &seq, |op| schedule.priority(op)),
        "{tag}: priority inversions"
    );
}

#[test]
fn every_zoo_model_is_equivalent_under_all_schedules() {
    let oracle = CostOracle::new(Platform::cloud_gpu());
    for model in Model::ALL {
        for (w, s) in [(4, 2), (16, 4)] {
            let d = deploy(
                &model.build_with_batch(Mode::Training, 2),
                &ClusterSpec::new(w, s),
            )
            .unwrap();
            let g = d.graph();
            let w0 = d.workers()[0];
            let schedules = [
                ("baseline", no_ordering(g)),
                ("tic", d.replicate_schedule(&tic(g, w0))),
                ("tac", d.replicate_schedule(&tac(g, w0, &oracle))),
            ];
            for (name, schedule) in schedules {
                let tag = format!("{}/{w}w{s}s/{name}", model.name());
                assert_equivalent(g, d.workers(), &schedule, &tag);
            }
        }
    }
}

#[test]
fn inference_deployments_are_equivalent_too() {
    // No gradient path: the PS partitions see no inbound messages at all.
    let d = deploy(
        &Model::AlexNetV2.build_with_batch(Mode::Inference, 2),
        &ClusterSpec::new(8, 2),
    )
    .unwrap();
    let g = d.graph();
    assert_equivalent(g, d.workers(), &no_ordering(g), "alexnet/inference");
    let schedule = d.replicate_schedule(&tic(g, d.workers()[0]));
    assert_equivalent(g, d.workers(), &schedule, "alexnet/inference/tic");
}

/// A random layered training model (same shape family as
/// `cluster_properties.rs`).
fn random_model() -> impl Strategy<Value = ModelGraph> {
    (1usize..6, 1usize..5, any::<u64>()).prop_map(|(layers, width_step, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = ModelGraphBuilder::new("random", 4);
        let mut prev: Option<ModelOpId> = None;
        let mut weights = Vec::new();
        for l in 0..layers {
            let w = b.add_param(format!("l{l}/w"), vec![8 * width_step, 8]);
            let deps: Vec<ModelOpId> = prev.into_iter().collect();
            let fwd = b.add_op(
                format!("l{l}/fwd"),
                ModelOpKind::Forward,
                rng.gen_range(1e5..1e8),
                &deps,
                &[w],
                &[],
            );
            prev = Some(fwd);
            weights.push(w);
        }
        let loss = b.add_op(
            "loss",
            ModelOpKind::Loss,
            1e4,
            &prev.into_iter().collect::<Vec<_>>(),
            &[],
            &[],
        );
        let mut bwd_prev = loss;
        for (l, w) in weights.iter().enumerate().rev() {
            bwd_prev = b.add_op(
                format!("l{l}/grad"),
                ModelOpKind::Backward,
                rng.gen_range(1e5..1e8),
                &[bwd_prev],
                &[*w],
                &[*w],
            );
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_models_are_equivalent(
        model in random_model(),
        workers in 1usize..5,
        ps in 1usize..3,
    ) {
        let ps = ps.min(model.params().len());
        let d = deploy(&model, &ClusterSpec::new(workers, ps)).unwrap();
        let g = d.graph();
        assert_equivalent(g, d.workers(), &no_ordering(g), "random/baseline");
        let schedule = d.replicate_schedule(&tic(g, d.workers()[0]));
        assert_equivalent(g, d.workers(), &schedule, "random/tic");
    }
}

#[test]
fn simulate_switches_engines_at_the_threshold() {
    let model = tictac::tiny_mlp(Mode::Training, 4);
    let base = SimConfig::deterministic(Platform::cloud_gpu()).with_disorder_window(Some(1));
    for (w, expected) in [(4, EngineChoice::Sequential), (8, EngineChoice::Parallel)] {
        let d = deploy(&model, &ClusterSpec::new(w, 2)).unwrap();
        assert_eq!(
            selected_engine(d.graph(), &base.clone().with_par_threshold(Some(8))),
            expected,
            "{w} workers vs threshold 8"
        );
    }
}

#[test]
fn sessions_above_the_threshold_match_the_pinned_oracle() {
    let report_with = |threshold: Option<usize>| {
        Session::builder(tictac::tiny_mlp(Mode::Training, 4))
            .cluster(ClusterSpec::new(8, 2))
            .config(
                SimConfig::deterministic(Platform::cloud_gpu())
                    .with_disorder_window(Some(1))
                    .with_par_threshold(threshold),
            )
            .scheduler(tictac::SchedulerKind::Tac)
            .warmup(0)
            .iterations(2)
            .build()
            .expect("model deploys")
            .run()
    };
    let par = report_with(Some(1));
    let seq = report_with(None);
    assert_eq!(par.mean_makespan(), seq.mean_makespan());
}
