//! Golden snapshot of the Perfetto exporter.
//!
//! Pins the exact bytes `Session::perfetto_json` produces for one
//! fixed-seed TAC-scheduled AlexNet iteration — the same artifact
//! `repro --export-trace` writes. The hand-rolled JSON writer has a
//! fixed field order and fixed `ts`/`dur` formatting, so any change to
//! the exporter (or to the underlying trace: this doubles as a sixth
//! golden trace) shows up as a byte diff.
//!
//! Deliberate exporter changes re-pin with:
//!
//! ```text
//! SNAPSHOT_UPDATE=1 cargo test -q --test perfetto_snapshot
//! ```

use tictac::{ClusterSpec, Mode, Model, SchedulerKind, Session, SimConfig};

const SNAPSHOT: &str = "tests/snapshots/alexnet_tac_iter0.perfetto.json";

fn export() -> String {
    Session::builder(Model::AlexNetV2.build_with_batch(Mode::Training, 2))
        .cluster(ClusterSpec::new(2, 1))
        .config(SimConfig::cloud_gpu())
        .scheduler(SchedulerKind::Tac)
        .build()
        .expect("zoo model deploys")
        .perfetto_json(0)
        .expect("fault-free iteration")
}

#[test]
fn alexnet_trace_matches_snapshot() {
    let json = export();
    // The export must always be structurally valid, snapshot aside.
    let stats = tictac::validate_perfetto(&json).expect("valid trace_event JSON");
    assert!(stats.slices > 0);

    if std::env::var_os("SNAPSHOT_UPDATE").is_some() {
        std::fs::write(SNAPSHOT, &json).expect("write snapshot");
        return;
    }
    let pinned = std::fs::read_to_string(SNAPSHOT)
        .expect("snapshot missing; regenerate with SNAPSHOT_UPDATE=1");
    assert_eq!(
        json, pinned,
        "Perfetto export drifted from {SNAPSHOT}; if deliberate, \
         re-pin with SNAPSHOT_UPDATE=1"
    );
}

#[test]
fn export_is_stable_across_processes_within_a_run() {
    assert_eq!(export(), export());
}
