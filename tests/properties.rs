//! Property-based tests over randomly generated worker/PS graphs.

use proptest::prelude::*;
use tictac::{
    no_ordering, simulate, tac_order, tac_order_naive, tic, Cost, Graph, GraphBuilder, OpId,
    OpKind, Platform, SimConfig,
};
use tictac_graph::topo;

/// A randomly shaped single-worker deployment: `n_params` transfers and a
/// layered compute DAG where each layer depends on some earlier layers and
/// some recvs.
#[derive(Debug, Clone)]
struct RandomGraph {
    graph: Graph,
    recvs: Vec<OpId>,
    worker: tictac::DeviceId,
}

fn random_graph_strategy() -> impl Strategy<Value = RandomGraph> {
    (2usize..10, 1usize..14, any::<u64>()).prop_map(|(n_params, n_compute, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);

        let mut b = GraphBuilder::new();
        let worker = b.add_worker("w0");
        let ps = b.add_parameter_server("ps0");
        let ch = b.add_channel(worker, ps);

        let mut recvs = Vec::new();
        for i in 0..n_params {
            let bytes = rng.gen_range(1_000u64..4_000_000);
            let p = b.add_param(format!("p{i}"), bytes);
            let read = b.add_op(
                format!("read{i}"),
                ps,
                OpKind::Read { param: p },
                Cost::flops(10.0),
                &[],
            );
            let send = b.add_op(
                format!("send{i}"),
                ps,
                OpKind::send(p, ch),
                Cost::bytes(bytes),
                &[read],
            );
            recvs.push(b.add_op(
                format!("recv{i}"),
                worker,
                OpKind::recv(p, ch),
                Cost::bytes(bytes),
                &[send],
            ));
        }

        let mut computes: Vec<OpId> = Vec::new();
        for i in 0..n_compute {
            let mut deps = Vec::new();
            // Depend on up to two earlier compute ops and up to two recvs.
            for _ in 0..rng.gen_range(0..=2usize) {
                if let Some(&c) = computes.get(rng.gen_range(0..computes.len().max(1))) {
                    deps.push(c);
                }
            }
            for _ in 0..rng.gen_range(0..=2usize) {
                deps.push(recvs[rng.gen_range(0..recvs.len())]);
            }
            if deps.is_empty() {
                deps.push(recvs[0]);
            }
            computes.push(b.add_op(
                format!("c{i}"),
                worker,
                OpKind::Compute,
                Cost::flops(rng.gen_range(1e6..1e9)),
                &deps,
            ));
        }
        let graph = b.build().expect("constructively acyclic");
        RandomGraph {
            graph,
            recvs,
            worker,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_are_valid(g in random_graph_strategy()) {
        prop_assert!(g.graph.check().is_ok());
        prop_assert!(topo::is_acyclic(&g.graph));
    }

    #[test]
    fn topo_order_is_always_topological(g in random_graph_strategy()) {
        let order = topo::topo_order(&g.graph).unwrap();
        prop_assert!(topo::is_topological(&g.graph, &order));
    }

    #[test]
    fn tic_prioritizes_every_recv_and_nothing_else(g in random_graph_strategy()) {
        let schedule = tic(&g.graph, g.worker);
        for &r in &g.recvs {
            prop_assert!(schedule.priority(r).is_some(), "recv {r} unprioritized");
        }
        let prioritized = schedule.prioritized().count();
        prop_assert_eq!(prioritized, g.recvs.len());
    }

    #[test]
    fn tac_order_is_a_permutation_of_recvs(g in random_graph_strategy()) {
        let oracle = tictac::CostOracle::new(Platform::cloud_gpu());
        let order = tac_order(&g.graph, g.worker, &oracle);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let mut expected = g.recvs.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn incremental_tac_order_equals_the_naive_reference(g in random_graph_strategy()) {
        // The fast path maintains M+ incrementally (DESIGN.md §7); the
        // naive reference recomputes every property from scratch each
        // round. Same comparator, same tie-breaks — the orders must be
        // identical, not merely both valid.
        let oracle = tictac::CostOracle::new(Platform::cloud_gpu());
        let fast = tac_order(&g.graph, g.worker, &oracle);
        let naive = tac_order_naive(&g.graph, g.worker, &oracle);
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn simulation_executes_every_op_exactly_once(g in random_graph_strategy()) {
        let config = SimConfig::cloud_gpu();
        let trace = simulate(&g.graph, &no_ordering(&g.graph), &config, 1);
        prop_assert_eq!(trace.executed_ops(), g.graph.len());
    }

    #[test]
    fn compute_ops_on_one_device_never_overlap(g in random_graph_strategy()) {
        let config = SimConfig::cloud_gpu();
        let trace = simulate(&g.graph, &no_ordering(&g.graph), &config, 2);
        let mut intervals: Vec<(u64, u64)> = g
            .graph
            .ops_on(g.worker)
            .filter(|&op| !g.graph.op(op).kind().is_communication())
            .filter_map(|op| trace.record(op))
            .map(|r| (r.start.as_nanos(), r.end.as_nanos()))
            .collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn transfers_on_one_channel_never_overlap(g in random_graph_strategy()) {
        let config = SimConfig::cloud_gpu();
        let trace = simulate(&g.graph, &no_ordering(&g.graph), &config, 3);
        let mut intervals: Vec<(u64, u64)> = g
            .graph
            .recv_ops()
            .into_iter()
            .filter_map(|op| trace.record(op))
            .map(|r| (r.start.as_nanos(), r.end.as_nanos()))
            .collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn traces_respect_dag_precedence(g in random_graph_strategy()) {
        let config = SimConfig::cloud_gpu();
        let trace = simulate(&g.graph, &no_ordering(&g.graph), &config, 4);
        for id in g.graph.op_ids() {
            // Send ops are traced as spanning their transfer, so their
            // recorded interval is not a completion time; skip them as
            // predecessors and as subjects.
            if g.graph.op(id).kind().is_send() {
                continue;
            }
            let start = trace.record(id).unwrap().start;
            for &p in g.graph.preds(id) {
                if g.graph.op(p).kind().is_send() {
                    continue;
                }
                let pred_end = trace.record(p).unwrap().end;
                prop_assert!(
                    pred_end <= start,
                    "{} starts at {:?} before pred {} ends at {:?}",
                    g.graph.op_name(id),
                    start,
                    g.graph.op_name(p),
                    pred_end
                );
            }
        }
    }

    #[test]
    fn enforced_full_order_is_exactly_respected(g in random_graph_strategy()) {
        // Give recvs a random total order and check completion follows it
        // when reorder errors are disabled.
        let mut schedule = no_ordering(&g.graph);
        for (rank, &r) in g.recvs.iter().enumerate() {
            schedule.set(r, rank as u64);
        }
        let config = SimConfig::cloud_gpu().with_reorder_error(0.0);
        let trace = simulate(&g.graph, &schedule, &config, 5);
        let completion = trace.recv_completion_order(&g.graph, g.worker);
        prop_assert_eq!(completion, g.recvs.clone());
    }

    #[test]
    fn iteration_time_never_beats_the_critical_path(g in random_graph_strategy()) {
        let config = SimConfig::deterministic(Platform::cloud_gpu());
        let oracle = tictac::CostOracle::new(Platform::cloud_gpu());
        use tictac::TimeOracle;
        let critical = topo::critical_path(&g.graph, |op| {
            oracle.duration(&g.graph, op).as_nanos() as f64
        });
        let trace = simulate(&g.graph, &no_ordering(&g.graph), &config, 6);
        // Sends are instantaneous in the simulator but cost 1us under the
        // oracle; allow that slack.
        let slack = 2.0 * g.graph.len() as f64 * 1_000.0;
        prop_assert!(
            trace.makespan().as_nanos() as f64 >= critical - slack,
            "makespan {} below critical path {critical}ns",
            trace.makespan()
        );
    }
}
