//! Run-store integration tests: encode→decode→encode byte identity over
//! randomized records, schema-version rejection, append/load through a
//! real file, history-aware regression gating, and a golden snapshot
//! pinning the `tictac-run/v2` wire format.
//!
//! Regenerate the golden file after an intentional schema change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test run_store golden
//! ```

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tictac_obs::{HistogramStats, MetricValue, Snapshot, TimerStats};
use tictac_store::{
    diff_records, regress, BenchEvidence, IterationEvidence, Payload, PhaseMean, RegressPolicy,
    ReportEvidence, RunRecord, RunStore, SessionEvidence, SCHEMA,
};
use tictac_trace::FaultCounters;

const GOLDEN: &str = "tests/snapshots/run_record.golden.jsonl";

/// Strings that exercise the JSON escaper: quotes, backslashes, control
/// characters, multi-byte UTF-8.
fn random_label(rng: &mut SmallRng) -> String {
    const POOL: [&str; 8] = [
        "alexnet_v2",
        "vgg_19",
        "table1",
        "ci job #42",
        "a\"quoted\"label",
        "back\\slash",
        "tab\tand\nnewline",
        "schön-ü€",
    ];
    POOL[rng.gen_range(0..POOL.len())].to_string()
}

/// A finite f64 spanning magnitudes from subnormal-ish to huge, plus the
/// negative-zero and integral edge cases shortest-form formatting must
/// keep exact.
fn random_float(rng: &mut SmallRng) -> f64 {
    match rng.gen_range(0..6u32) {
        0 => 0.0,
        1 => -0.0,
        2 => rng.gen_range(0..1_000_000u64) as f64,
        3 => rng.gen::<f64>() * 1e-9,
        4 => (rng.gen::<f64>() - 0.5) * 1e12,
        _ => rng.gen::<f64>(),
    }
}

fn random_snapshot(rng: &mut SmallRng) -> Snapshot {
    let mut entries = Vec::new();
    for i in 0..rng.gen_range(0..4usize) {
        let name = format!("m{i}.{}", random_label(rng));
        let value = match rng.gen_range(0..4u32) {
            0 => MetricValue::Counter(rng.gen_range(0..1u64 << 50)),
            1 => MetricValue::Gauge(random_float(rng)),
            2 => {
                let bounds: Vec<u64> = (1..=rng.gen_range(1..4u64)).map(|b| b * 100).collect();
                let buckets: Vec<u64> = (0..=bounds.len())
                    .map(|_| rng.gen_range(0..50u64))
                    .collect();
                let count = buckets.iter().sum();
                MetricValue::Histogram(HistogramStats {
                    max: if count == 0 {
                        0
                    } else {
                        rng.gen_range(0..500u64)
                    },
                    sum: rng.gen_range(0..1u64 << 40),
                    count,
                    bounds,
                    buckets,
                })
            }
            _ => MetricValue::Timer(TimerStats {
                count: rng.gen_range(0..1000),
                total_ns: rng.gen_range(0..1u64 << 50),
                max_ns: rng.gen_range(0..1u64 << 50),
            }),
        };
        entries.push((name, value));
    }
    Snapshot { entries }
}

fn random_payload(rng: &mut SmallRng) -> Payload {
    match rng.gen_range(0..3u32) {
        0 => Payload::Session(SessionEvidence {
            iterations: (0..rng.gen_range(0..4usize))
                .map(|_| IterationEvidence {
                    makespan_ns: rng.gen_range(0..1u64 << 50),
                    throughput: random_float(rng),
                    straggler_pct: random_float(rng),
                    efficiency: random_float(rng),
                    speedup_potential: random_float(rng),
                    goodput_pct: random_float(rng),
                    inversions: rng.gen_range(0..1u64 << 50),
                })
                .collect(),
            faults: FaultCounters {
                drops: rng.gen_range(0..100),
                timeouts: rng.gen_range(0..100),
                retransmits: rng.gen_range(0..100),
                blackouts: rng.gen_range(0..100),
                crashes: rng.gen_range(0..100),
                ps_stalls: rng.gen_range(0..100),
                stragglers: rng.gen_range(0..100),
                deferred_ops: rng.gen_range(0..100),
                degraded_barriers: rng.gen_range(0..100),
            },
            snapshot: random_snapshot(rng),
        }),
        1 => Payload::Bench(BenchEvidence {
            phases: (0..rng.gen_range(1..5usize))
                .map(|i| PhaseMean {
                    name: format!("phase{i}"),
                    mean_ms: random_float(rng).abs(),
                })
                .collect(),
        }),
        _ => Payload::Report(ReportEvidence {
            report_fp: rng.gen::<u64>(),
            quick: rng.gen::<u64>() & 1 == 1,
        }),
    }
}

/// Identity fields cover the full `u64` range for the stringified
/// fingerprints/seed (they survive beyond 2^53) and the safe-integer
/// range for everything encoded as a bare JSON number.
fn random_record() -> impl Strategy<Value = RunRecord> {
    any::<u64>().prop_map(|seed| {
        let rng = &mut SmallRng::seed_from_u64(seed);
        RunRecord {
            id: format!("r{:06}", rng.gen_range(0..1_000_000u64)),
            time_ms: rng.gen_range(0..1u64 << 50),
            source: random_label(rng),
            workload: random_label(rng),
            model_fp: rng.gen::<u64>(),
            workers: rng.gen::<u32>(),
            ps: rng.gen::<u32>(),
            scheduler: random_label(rng),
            backend: random_label(rng),
            seed: rng.gen::<u64>(),
            fault_fp: rng.gen::<u64>(),
            scenario_fp: rng.gen::<u64>(),
            comm_fp: rng.gen::<u64>(),
            provenance: random_label(rng),
            payload: random_payload(rng),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_encode_is_byte_identical(record in random_record()) {
        let first = record.encode();
        let decoded = RunRecord::decode(&first).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &record);
        let second = decoded.encode();
        prop_assert_eq!(first, second);
    }
}

#[test]
fn non_finite_floats_survive_as_null_round_trips() {
    let mut record = sample_record();
    if let Payload::Session(s) = &mut record.payload {
        s.iterations[0].throughput = f64::NAN;
        s.iterations[0].efficiency = f64::INFINITY;
    }
    let first = record.encode();
    assert!(first.contains("\"throughput\":null"));
    let decoded = RunRecord::decode(&first).expect("null floats decode");
    // NaN breaks PartialEq, but the bytes stay fixed under re-encoding.
    assert_eq!(first, decoded.encode());
}

#[test]
fn other_schema_versions_are_rejected() {
    let line = sample_record().encode();
    for tampered in [
        line.replace("tictac-run/v3", "tictac-run/v4"),
        line.replace("tictac-run/v3", "tictac-run/v2"),
        line.replace("tictac-run/v3", "someone-elses-schema"),
    ] {
        let err = RunRecord::decode(&tampered).expect_err("wrong schema must not decode");
        assert!(err.contains("schema"), "unhelpful error: {err}");
    }
    // Same version, unknown extra field: also rejected (strict schema).
    let extra = line.replace("\"provenance\"", "\"extra\":1,\"provenance\"");
    assert!(RunRecord::decode(&extra).is_err());
}

#[test]
fn store_append_assigns_ids_and_loads_back() {
    let path = std::env::temp_dir().join(format!("tictac-run-store-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = RunStore::at(&path);
    let mut record = sample_record();
    record.id.clear();
    let a = store.append(record.clone()).expect("append");
    let b = store.append(record.clone()).expect("append");
    assert_eq!((a.as_str(), b.as_str()), ("r000000", "r000001"));

    let loaded = store.load().expect("load");
    assert_eq!(loaded.len(), 2);
    assert_eq!(loaded[0].payload, loaded[1].payload);
    assert_eq!(loaded[0].payload, record.payload);
    // Identical inputs, byte-identical stored payloads: zero drift.
    let diff = diff_records(&loaded[0], &loaded[1]);
    assert!(diff.is_zero(), "unexpected drift:\n{}", diff.render());
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn regress_flags_a_slowdown_against_history() {
    let make = |makespan_ns: u64, efficiency: f64| {
        let mut r = sample_record();
        if let Payload::Session(s) = &mut r.payload {
            for i in &mut s.iterations {
                i.makespan_ns = makespan_ns;
                i.efficiency = efficiency;
            }
        }
        r
    };
    let healthy: Vec<RunRecord> = (0..4).map(|_| make(1_000_000, 0.95)).collect();
    let report = regress(&healthy, &RegressPolicy::default());
    assert!(
        !report.failed(),
        "healthy history must pass:\n{}",
        report.render()
    );

    let mut with_regression = healthy;
    with_regression.push(make(1_200_000, 0.95)); // +20% over the window best
    let report = regress(&with_regression, &RegressPolicy::default());
    assert!(
        report.failed(),
        "slowdown must be flagged:\n{}",
        report.render()
    );
    assert!(report.render().contains("DRIFT"));
}

/// A fully-populated fixed record: every payload field exercised, fixed
/// timestamp, so its encoding is stable down to the byte.
fn sample_record() -> RunRecord {
    RunRecord {
        id: "r000007".into(),
        time_ms: 1_754_000_000_000,
        source: "session".into(),
        workload: "alexnet_v2".into(),
        model_fp: 0xd0fa_9f4c_c236_0d6e,
        workers: 2,
        ps: 1,
        scheduler: "tac".into(),
        backend: "sim".into(),
        seed: u64::MAX,
        fault_fp: 0xb815_eafa_d4fb_89ac,
        scenario_fp: 0x5c3a_a01d_be1f_7a2e,
        comm_fp: 0x00c0_33f1_66ed_5a17,
        provenance: "golden \"fixture\" \\ line".into(),
        payload: Payload::Session(SessionEvidence {
            iterations: vec![
                IterationEvidence {
                    makespan_ns: 1_146_726_469,
                    throughput: 3.25,
                    straggler_pct: 1.5,
                    efficiency: 0.975,
                    speedup_potential: 0.025,
                    goodput_pct: 100.0,
                    inversions: 0,
                },
                IterationEvidence {
                    makespan_ns: 1_151_468_364,
                    throughput: 3.125,
                    straggler_pct: 2.25,
                    efficiency: 0.953125,
                    speedup_potential: 0.046875,
                    goodput_pct: 99.5,
                    inversions: 3,
                },
            ],
            faults: FaultCounters {
                drops: 2,
                timeouts: 1,
                retransmits: 1,
                blackouts: 0,
                crashes: 0,
                ps_stalls: 0,
                stragglers: 0,
                deferred_ops: 4,
                degraded_barriers: 1,
            },
            snapshot: Snapshot {
                entries: vec![
                    ("session.iterations".into(), MetricValue::Counter(2)),
                    ("session.goodput_pct".into(), MetricValue::Gauge(99.5)),
                    (
                        "session.makespan_us".into(),
                        MetricValue::Histogram(HistogramStats {
                            bounds: vec![1_000_000, 2_000_000],
                            buckets: vec![2, 0, 0],
                            count: 2,
                            sum: 2_298_194,
                            max: 1_151_468,
                        }),
                    ),
                    (
                        "session.iteration_wall".into(),
                        MetricValue::Timer(TimerStats {
                            count: 2,
                            total_ns: 1_500_000,
                            max_ns: 900_000,
                        }),
                    ),
                ],
            },
        }),
    }
}

/// Pins the `tictac-run/v2` wire format: any byte-level change to the
/// encoder shows up as a diff against the committed golden line.
#[test]
fn golden_run_record_snapshot() {
    let record = sample_record();
    let encoded = format!("{}\n", record.encode());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &encoded).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        encoded, golden,
        "run-record encoding changed; if intentional, bump {SCHEMA} and \
         regenerate with UPDATE_GOLDEN=1"
    );
    // The committed line also decodes back to the exact fixture.
    let decoded = RunRecord::decode(golden.trim_end()).expect("golden decodes");
    assert_eq!(decoded, record);
}
