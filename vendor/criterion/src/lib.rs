//! Offline vendored minimal `criterion`-compatible bench harness.
//!
//! Supports the API the workspace benches use: `Criterion::benchmark_group`,
//! `bench_function`, `sample_size`, `Bencher::iter`/`iter_batched`,
//! [`BatchSize`], and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's statistical machinery it times a fixed number of
//! iterations with `std::time::Instant` and prints mean wall-clock per
//! iteration — enough to compare runs by eye in an offline environment.

use std::time::{Duration, Instant};

/// Batch sizing hint (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Opaque blackbox: defeats constant-folding of benched expressions.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 50,
            _parent: self,
        }
    }

    /// Registers one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), 50, f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / b.iters as u32
    };
    println!("bench {label:<40} {mean:>12.3?}/iter ({} iters)", b.iters);
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` with a fresh un-timed `setup` output per sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a bench group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn harness_runs() {
        benches();
    }
}
