//! Offline vendored shim for `crossbeam::scope`, backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantics difference from the real crate: a panicking child thread
//! propagates out of [`scope`] as a panic rather than an `Err`, so callers'
//! `.expect("worker thread panicked")` still fires — just one unwind
//! earlier.

/// A scoped-spawn handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (unused by
    /// this workspace, kept for signature compatibility).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let child = Scope { inner: self.inner };
        self.inner.spawn(move || f(&child))
    }
}

/// Runs `f` with a scope allowing borrowing spawns; joins all children
/// before returning.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        super::scope(|scope| {
            for &x in &data {
                let counter = &counter;
                scope.spawn(move |_| counter.fetch_add(x, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
