//! Offline vendored shim for `parking_lot::Mutex` over `std::sync::Mutex`.
//!
//! Matches the parking_lot calling convention (`lock()` returns the guard
//! directly, no `Result`); a poisoned std mutex — only possible after a
//! panic that is already propagating — panics on the next lock instead.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned by a panicking thread")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .expect("mutex poisoned by a panicking thread")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
