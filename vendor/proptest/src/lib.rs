//! Offline vendored mini property-testing harness.
//!
//! Implements the slice of the `proptest` surface this workspace uses —
//! [`Strategy`] with `prop_map`, range and `any::<T>()` strategies, tuple
//! composition, the [`proptest!`] macro with `#![proptest_config(...)]`,
//! and the `prop_assert*` macros. Compared to the real crate there is no
//! shrinking and no persisted failure seeds: every case is generated from
//! a deterministic per-test stream (FNV of the test name × case index), so
//! failures reproduce exactly on re-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Everything a `proptest!` test needs in scope.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Per-test-family configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value from the deterministic case stream.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut SmallRng) -> $ty {
                rng.gen::<u64>() as $ty
            }
        }
    )*};
}

arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// FNV-1a of the test name: a stable per-test seed base.
#[doc(hidden)]
pub fn seed_of(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[doc(hidden)]
pub fn case_rng(name: &str, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(seed_of(name, case))
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and `fn name(pat in strategy, ...) { ... }`
/// items, as in the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng =
                        $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn mapped_strategies_apply(x in evens()) {
            prop_assert!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_ranges_compose(
            (a, b) in (1usize..5, 10u64..20),
            c in any::<u64>(),
        ) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((10..20).contains(&b));
            prop_assert_ne!(a as u64 + b + c + 1, 0);
        }
    }

    #[test]
    fn case_streams_are_deterministic() {
        use rand::Rng as _;
        let a: u64 = super::case_rng("t", 3).gen();
        let b: u64 = super::case_rng("t", 3).gen();
        let c: u64 = super::case_rng("t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
