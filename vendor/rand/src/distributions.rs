//! The `Standard` distribution and uniform range sampling.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of each primitive: full range for integers,
/// `[0, 1)` with 53 bits of precision for floats (as in `rand 0.8`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Upstream samples a u32 and keeps one bit.
        (rng.next_u32() & 1) == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit mantissa mapping to [0, 1), identical to rand 0.8's
        // `Standard` for f64.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// 64×64→128-bit widening multiply, returning `(hi, lo)`.
#[inline]
fn wmul(a: u64, b: u64) -> (u64, u64) {
    let full = (a as u128) * (b as u128);
    ((full >> 64) as u64, full as u64)
}

/// Uniform `u64` in `[0, range)` by widening-multiply rejection with the
/// `zone` of `rand 0.8`'s `UniformInt::sample_single` (bit-identical
/// accept/reject decisions).
#[inline]
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul(v, range);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! uniform_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_u64_below(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(sample_u64_below(rng, span) as $ty)
            }
        }
    )*};
}

uniform_int_range!(u64, usize, u32, i64, i32);

macro_rules! uniform_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let value01: $ty = Standard.sample(rng);
                // scale * x + offset, as in UniformFloat::sample_single.
                let scale = self.end - self.start;
                value01 * scale + self.start
            }
        }
    )*};
}

uniform_float_range!(f64, f32);
