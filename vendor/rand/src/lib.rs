//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no registry cache, so
//! this crate substitutes for the real `rand` dependency. It implements
//! exactly the surface the workspace uses — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`seq::SliceRandom::shuffle`] — and is **bit-compatible** with
//! `rand 0.8` + `rand_core 0.6` on 64-bit targets:
//!
//! * `seed_from_u64` fills the seed words with the same PCG32 stream,
//! * `SmallRng` is xoshiro256++ (the 64-bit `SmallRng` of `rand 0.8`),
//! * `gen::<f64>()` uses the 53-bit `Standard` mapping to `[0, 1)`,
//! * integer `gen_range` uses the widening-multiply rejection method with
//!   the same `zone` computation as `UniformInt::sample_single`,
//! * `shuffle` is the same reverse Fisher–Yates.
//!
//! Reproducing the upstream bit streams keeps every calibrated statistical
//! threshold in the test suite meaningful.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of every generator: a source of `u64`s (and `u32`s).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with the PCG32
    /// stream `rand_core 0.6` uses (bit-identical seeding).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64_pub()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64_pub()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64_pub()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0usize..=2);
            assert!(b <= 2);
            let c = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&c));
            let d = rng.gen_range(1_000u64..4_000_000);
            assert!((1_000..4_000_000).contains(&d));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
        let mut rng2 = SmallRng::seed_from_u64(9);
        let mut v2: Vec<u32> = (0..32).collect();
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
    }
}
