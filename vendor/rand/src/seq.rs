//! Slice helpers.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (reverse Fisher–Yates, as in
    /// `rand 0.8`).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..i + 1));
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            Some(&self[i])
        }
    }
}
