//! Offline vendored no-op subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types as
//! forward-looking API decoration but never serializes anything (there is
//! no `serde_json` or other format crate in the tree). With no registry
//! access at build time, this stub supplies the two trait names and
//! re-exports no-op derive macros so the annotations stay compilable.
//! Swapping the real `serde` back in is a one-line workspace change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
