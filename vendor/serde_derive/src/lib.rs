//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! The derives expand to nothing: no code in the workspace requires the
//! trait bounds, so an empty expansion keeps `#[derive(Serialize,
//! Deserialize)]` annotations valid without pulling in `syn`/`quote`.

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
